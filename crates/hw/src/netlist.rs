//! Gate-level netlist with area/power accumulation, critical-path analysis
//! and functional (boolean) simulation.
//!
//! The netlist is deliberately simple: a flat list of [`Gate`]s connected by
//! integer net identifiers. Builders in [`crate::constmul`], [`crate::adder`],
//! [`crate::neuron`] and [`crate::circuit`] append gates; analysis walks the
//! list. Net 0 is hard-wired to logic 0 and net 1 to logic 1.

use crate::analysis::{AreaReport, PowerReport, TimingReport};
use crate::cell::{CellKind, CellLibrary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a net (wire) in a [`Netlist`].
pub type NetId = usize;

/// One instantiated standard cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// The cell kind.
    pub kind: CellKind,
    /// Input nets, in cell-specific order (e.g. `[a, b, cin]` for a full
    /// adder, `[sel, d0, d1]` for a mux).
    pub inputs: Vec<NetId>,
    /// Output nets, in cell-specific order (e.g. `[sum, cout]` for adders).
    pub outputs: Vec<NetId>,
}

/// A flat gate-level netlist.
///
/// # Example
///
/// ```
/// use pmlp_hw::{Netlist, CellKind, CellLibrary};
///
/// let mut n = Netlist::new("demo");
/// let a = n.add_input();
/// let b = n.add_input();
/// let y = n.add_net();
/// n.add_gate(CellKind::And2, vec![a, b], vec![y]);
/// n.mark_output(y);
/// assert_eq!(n.gate_count(), 1);
/// let area = n.area(&CellLibrary::egt());
/// assert!(area.total_mm2 > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    net_count: usize,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
}

/// Net id of the constant logic-0 net.
pub const CONST_ZERO: NetId = 0;
/// Net id of the constant logic-1 net.
pub const CONST_ONE: NetId = 1;

impl Netlist {
    /// Creates an empty netlist. Nets [`CONST_ZERO`] and [`CONST_ONE`] are
    /// pre-allocated.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            net_count: 2,
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
        }
    }

    /// The netlist's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Allocates a fresh internal net and returns its id.
    pub fn add_net(&mut self) -> NetId {
        let id = self.net_count;
        self.net_count += 1;
        id
    }

    /// Allocates a primary-input net.
    pub fn add_input(&mut self) -> NetId {
        let id = self.add_net();
        self.primary_inputs.push(id);
        id
    }

    /// Marks an existing net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.primary_outputs.push(net);
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if any referenced net has not been allocated, which would
    /// indicate a builder bug.
    pub fn add_gate(&mut self, kind: CellKind, inputs: Vec<NetId>, outputs: Vec<NetId>) {
        for &net in inputs.iter().chain(outputs.iter()) {
            assert!(
                net < self.net_count,
                "gate references unallocated net {net}"
            );
        }
        self.gates.push(Gate {
            kind,
            inputs,
            outputs,
        });
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets (including the two constants).
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Primary inputs in allocation order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs in marking order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// The gates, in insertion order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates of each kind.
    pub fn count_by_kind(&self) -> BTreeMap<CellKind, usize> {
        let mut map = BTreeMap::new();
        for g in &self.gates {
            *map.entry(g.kind).or_insert(0) += 1;
        }
        map
    }

    /// Total cell area under the given library.
    pub fn area(&self, library: &CellLibrary) -> AreaReport {
        let mut by_kind = BTreeMap::new();
        let mut total = 0.0;
        for (kind, count) in self.count_by_kind() {
            let a = library.params(kind).area_mm2 * count as f64;
            by_kind.insert(kind, (count, a));
            total += a;
        }
        AreaReport {
            total_mm2: total,
            gate_count: self.gate_count(),
            by_kind,
        }
    }

    /// Total static power under the given library.
    pub fn power(&self, library: &CellLibrary) -> PowerReport {
        let mut by_kind = BTreeMap::new();
        let mut total = 0.0;
        for (kind, count) in self.count_by_kind() {
            let p = library.params(kind).power_uw * count as f64;
            by_kind.insert(kind, (count, p));
            total += p;
        }
        PowerReport {
            total_uw: total,
            by_kind,
        }
    }

    /// Critical-path delay (longest combinational path from any primary input
    /// or constant to any net) under the given library.
    pub fn timing(&self, library: &CellLibrary) -> TimingReport {
        let arrival = self.arrival_times(library);
        let critical = arrival.iter().cloned().fold(0.0_f64, f64::max);
        TimingReport {
            critical_path_us: critical,
            max_frequency_hz: if critical > 0.0 {
                1e6 / critical
            } else {
                f64::INFINITY
            },
        }
    }

    /// Arrival time (µs) of every net, assuming all primary inputs and
    /// constants arrive at t = 0 and gates are evaluated in dependency order.
    fn arrival_times(&self, library: &CellLibrary) -> Vec<f64> {
        let order = self.topological_gate_order();
        let mut arrival = vec![0.0_f64; self.net_count];
        for &gi in &order {
            let gate = &self.gates[gi];
            let input_arrival = gate
                .inputs
                .iter()
                .map(|&n| arrival[n])
                .fold(0.0_f64, f64::max);
            let t = input_arrival + library.params(gate.kind).delay_us;
            for &out in &gate.outputs {
                if t > arrival[out] {
                    arrival[out] = t;
                }
            }
        }
        arrival
    }

    /// Gate indices in topological order (producers before consumers).
    ///
    /// Builders create nets before driving them and drive them before use, so
    /// insertion order is already topological for all netlists produced by
    /// this crate; this method verifies and, if needed, re-sorts via Kahn's
    /// algorithm. Combinational loops are broken arbitrarily (they cannot be
    /// produced by the builders).
    pub fn topological_gate_order(&self) -> Vec<usize> {
        // Fast path: the builders in this crate always append producers
        // before consumers, so most netlists are already in topological
        // order — verify with two bit-vectors instead of building the full
        // Kahn worklist structures.
        if self.insertion_order_is_topological() {
            return (0..self.gates.len()).collect();
        }
        // Map net -> producing gate index.
        let mut producer: Vec<Option<usize>> = vec![None; self.net_count];
        for (gi, gate) in self.gates.iter().enumerate() {
            for &out in &gate.outputs {
                producer[out] = Some(gi);
            }
        }
        // In-degree = number of inputs driven by other gates.
        let mut indegree: Vec<usize> = self
            .gates
            .iter()
            .map(|g| g.inputs.iter().filter(|&&n| producer[n].is_some()).count())
            .collect();
        // Consumers of each gate.
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); self.gates.len()];
        for (gi, gate) in self.gates.iter().enumerate() {
            for &input in &gate.inputs {
                if let Some(p) = producer[input] {
                    consumers[p].push(gi);
                }
            }
        }
        let mut queue: Vec<usize> = (0..self.gates.len())
            .filter(|&gi| indegree[gi] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        let mut head = 0;
        while head < queue.len() {
            let gi = queue[head];
            head += 1;
            order.push(gi);
            for &c in &consumers[gi] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        // Fall back to insertion order for any gates stuck in a loop.
        if order.len() < self.gates.len() {
            let mut seen = vec![false; self.gates.len()];
            for &gi in &order {
                seen[gi] = true;
            }
            for (gi, &was_seen) in seen.iter().enumerate() {
                if !was_seen {
                    order.push(gi);
                }
            }
        }
        order
    }

    /// Nets that are *read* — consumed by a gate input or marked as a
    /// primary output — without any driver (not a constant, not a primary
    /// input, not any gate's output). [`Netlist::simulate`] evaluates every
    /// such net to `false`; a non-empty result from this method means a
    /// builder left a read dangling and the simulation's outputs should not
    /// be trusted. Allocated-but-never-read nets are not reported: they
    /// cannot influence simulation.
    pub fn undriven_nets(&self) -> Vec<NetId> {
        let mut driven = vec![false; self.net_count];
        driven[CONST_ZERO] = true;
        driven[CONST_ONE] = true;
        for &net in &self.primary_inputs {
            driven[net] = true;
        }
        for gate in &self.gates {
            for &out in &gate.outputs {
                driven[out] = true;
            }
        }
        let mut read = vec![false; self.net_count];
        for gate in &self.gates {
            for &input in &gate.inputs {
                read[input] = true;
            }
        }
        for &net in &self.primary_outputs {
            read[net] = true;
        }
        (0..self.net_count)
            .filter(|&n| read[n] && !driven[n])
            .collect()
    }

    /// `true` when every gate's inputs are driven only by constants, primary
    /// inputs, undriven nets or gates that appear *earlier* in the list.
    fn insertion_order_is_topological(&self) -> bool {
        let mut gate_driven = vec![false; self.net_count];
        for gate in &self.gates {
            for &out in &gate.outputs {
                gate_driven[out] = true;
            }
        }
        let mut available = vec![false; self.net_count];
        for gate in &self.gates {
            for &input in &gate.inputs {
                if gate_driven[input] && !available[input] {
                    return false;
                }
            }
            for &out in &gate.outputs {
                available[out] = true;
            }
        }
        true
    }

    /// Functionally simulates the netlist.
    ///
    /// `inputs` maps every primary input to a boolean value; constants are
    /// driven automatically. Returns the value of every net.
    ///
    /// # Undriven nets
    ///
    /// A net that is neither a constant, nor a primary input, nor any gate's
    /// output has no driver. Simulation is still total and deterministic:
    /// every such net evaluates to `false` (logic 0, identical to
    /// [`CONST_ZERO`]) both when read by a gate and in the returned vector.
    /// This is a guarantee, not an accident — the bespoke builders rely on it
    /// nowhere, but hand-built netlists (tests, external tooling) may read
    /// nets they forgot to drive, and a silent `false` beats an
    /// out-of-bounds panic mid-simulation. Use [`Netlist::undriven_nets`] to
    /// detect such reads before trusting a simulation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.primary_inputs().len()`.
    pub fn simulate(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.primary_inputs.len(),
            "expected {} primary input values",
            self.primary_inputs.len()
        );
        let mut values = vec![false; self.net_count];
        values[CONST_ONE] = true;
        for (&net, &v) in self.primary_inputs.iter().zip(inputs.iter()) {
            values[net] = v;
        }
        for gi in self.topological_gate_order() {
            let gate = &self.gates[gi];
            let get = |i: usize| values[gate.inputs[i]];
            match gate.kind {
                CellKind::Inverter => {
                    values[gate.outputs[0]] = !get(0);
                }
                CellKind::Buffer => {
                    values[gate.outputs[0]] = get(0);
                }
                CellKind::Nand2 => {
                    values[gate.outputs[0]] = !(get(0) && get(1));
                }
                CellKind::Nor2 => {
                    values[gate.outputs[0]] = !(get(0) || get(1));
                }
                CellKind::And2 => {
                    values[gate.outputs[0]] = get(0) && get(1);
                }
                CellKind::Or2 => {
                    values[gate.outputs[0]] = get(0) || get(1);
                }
                CellKind::Xor2 => {
                    values[gate.outputs[0]] = get(0) ^ get(1);
                }
                CellKind::Xnor2 => {
                    values[gate.outputs[0]] = !(get(0) ^ get(1));
                }
                CellKind::Mux2 => {
                    // inputs: [sel, d0, d1]
                    values[gate.outputs[0]] = if get(0) { get(2) } else { get(1) };
                }
                CellKind::HalfAdder => {
                    // inputs: [a, b], outputs: [sum, carry]
                    let (a, b) = (get(0), get(1));
                    values[gate.outputs[0]] = a ^ b;
                    values[gate.outputs[1]] = a && b;
                }
                CellKind::FullAdder => {
                    // inputs: [a, b, cin], outputs: [sum, carry]
                    let (a, b, c) = (get(0), get(1), get(2));
                    values[gate.outputs[0]] = a ^ b ^ c;
                    values[gate.outputs[1]] = (a && b) || (c && (a ^ b));
                }
                CellKind::Dff => {
                    // Combinational approximation: transparent latch.
                    values[gate.outputs[0]] = get(0);
                }
            }
        }
        values
    }

    /// Simulates the netlist and returns only the primary-output values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.primary_inputs().len()`.
    pub fn simulate_outputs(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.simulate(inputs);
        self.primary_outputs.iter().map(|&n| values[n]).collect()
    }

    /// Appends all gates and nets of `other` into `self`, remapping net ids.
    /// `other`'s primary inputs/outputs become ordinary internal nets; the
    /// mapping from `other` net ids to new ids is returned so callers can
    /// stitch the circuits together.
    pub fn absorb(&mut self, other: &Netlist) -> Vec<NetId> {
        let mut mapping = vec![0usize; other.net_count];
        mapping[CONST_ZERO] = CONST_ZERO;
        mapping[CONST_ONE] = CONST_ONE;
        for slot in mapping.iter_mut().skip(2) {
            *slot = self.add_net();
        }
        for gate in &other.gates {
            let inputs = gate.inputs.iter().map(|&n| mapping[n]).collect();
            let outputs = gate.outputs.iter().map(|&n| mapping[n]).collect();
            self.add_gate(gate.kind, inputs, outputs);
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_or_netlist() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let ab = n.add_net();
        let y = n.add_net();
        n.add_gate(CellKind::And2, vec![a, b], vec![ab]);
        n.add_gate(CellKind::Or2, vec![ab, c], vec![y]);
        n.mark_output(y);
        n
    }

    #[test]
    fn gate_and_net_counts() {
        let n = and_or_netlist();
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.primary_inputs().len(), 3);
        assert_eq!(n.primary_outputs().len(), 1);
        assert_eq!(n.count_by_kind()[&CellKind::And2], 1);
    }

    #[test]
    fn undriven_nets_read_as_false_and_are_reported() {
        let mut n = Netlist::new("undriven");
        let a = n.add_input();
        let dangling = n.add_net(); // never driven, but read below
        let unused = n.add_net(); // never driven, never read: not reported
        let y = n.add_net();
        n.add_gate(CellKind::Or2, vec![a, dangling], vec![y]);
        n.mark_output(y);
        assert_eq!(n.undriven_nets(), vec![dangling]);
        let _ = unused;
        // The documented guarantee: the dangling net is logic 0, so the OR
        // passes `a` through; the returned vector reports it as false too.
        for a_val in [false, true] {
            let values = n.simulate(&[a_val]);
            assert!(!values[dangling]);
            assert_eq!(values[y], a_val);
        }
        // A net marked as primary output without a driver is also reported.
        let mut m = Netlist::new("dangling-output");
        let _ = m.add_input();
        let out = m.add_net();
        m.mark_output(out);
        assert_eq!(m.undriven_nets(), vec![out]);
        assert!(!m.simulate(&[true])[out]);
        // Builder-produced netlists have no dangling reads.
        assert!(and_or_netlist().undriven_nets().is_empty());
    }

    #[test]
    fn simulation_matches_boolean_function() {
        let n = and_or_netlist();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let out = n.simulate_outputs(&[a, b, c]);
                    assert_eq!(out[0], (a && b) || c, "a={a} b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn constants_are_driven() {
        let mut n = Netlist::new("const");
        let y = n.add_net();
        n.add_gate(CellKind::Or2, vec![CONST_ZERO, CONST_ONE], vec![y]);
        n.mark_output(y);
        assert_eq!(n.simulate_outputs(&[]), vec![true]);
    }

    #[test]
    fn full_adder_truth_table() {
        let mut n = Netlist::new("fa");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let s = n.add_net();
        let co = n.add_net();
        n.add_gate(CellKind::FullAdder, vec![a, b, c], vec![s, co]);
        n.mark_output(s);
        n.mark_output(co);
        for bits in 0..8u8 {
            let a_v = bits & 1 != 0;
            let b_v = bits & 2 != 0;
            let c_v = bits & 4 != 0;
            let out = n.simulate_outputs(&[a_v, b_v, c_v]);
            let total = a_v as u8 + b_v as u8 + c_v as u8;
            assert_eq!(out[0], total & 1 != 0);
            assert_eq!(out[1], total >= 2);
        }
    }

    #[test]
    fn mux_selects_correct_input() {
        let mut n = Netlist::new("mux");
        let sel = n.add_input();
        let d0 = n.add_input();
        let d1 = n.add_input();
        let y = n.add_net();
        n.add_gate(CellKind::Mux2, vec![sel, d0, d1], vec![y]);
        n.mark_output(y);
        assert_eq!(n.simulate_outputs(&[false, true, false]), vec![true]);
        assert_eq!(n.simulate_outputs(&[true, true, false]), vec![false]);
    }

    #[test]
    fn area_and_power_scale_with_gate_count() {
        let lib = CellLibrary::egt();
        let single = and_or_netlist();
        let mut double = and_or_netlist();
        double.absorb(&and_or_netlist());
        assert!(double.area(&lib).total_mm2 > single.area(&lib).total_mm2);
        assert!((double.area(&lib).total_mm2 - 2.0 * single.area(&lib).total_mm2).abs() < 1e-9);
        assert!((double.power(&lib).total_uw - 2.0 * single.power(&lib).total_uw).abs() < 1e-9);
    }

    #[test]
    fn critical_path_is_sum_of_chain_delays() {
        let lib = CellLibrary::egt();
        let n = and_or_netlist();
        let expected = lib.params(CellKind::And2).delay_us + lib.params(CellKind::Or2).delay_us;
        let t = n.timing(&lib);
        assert!((t.critical_path_us - expected).abs() < 1e-9);
        assert!(t.max_frequency_hz.is_finite());
    }

    #[test]
    fn empty_netlist_has_zero_area_and_infinite_frequency() {
        let n = Netlist::new("empty");
        let lib = CellLibrary::egt();
        assert_eq!(n.area(&lib).total_mm2, 0.0);
        assert_eq!(n.timing(&lib).critical_path_us, 0.0);
        assert!(n.timing(&lib).max_frequency_hz.is_infinite());
    }

    #[test]
    fn absorb_remaps_nets_correctly() {
        let mut host = Netlist::new("host");
        let inner = and_or_netlist();
        let before_nets = host.net_count();
        let mapping = host.absorb(&inner);
        assert_eq!(host.gate_count(), inner.gate_count());
        assert!(host.net_count() > before_nets);
        assert_eq!(mapping[CONST_ZERO], CONST_ZERO);
        assert_eq!(mapping[CONST_ONE], CONST_ONE);
        // Every absorbed gate references valid nets (add_gate would have
        // panicked otherwise); check that the mapped output exists.
        let inner_out = inner.primary_outputs()[0];
        assert!(mapping[inner_out] < host.net_count());
    }

    #[test]
    fn topological_order_handles_out_of_order_insertion() {
        // Insert the consumer gate before its producer.
        let mut n = Netlist::new("ooo");
        let a = n.add_input();
        let b = n.add_input();
        let mid = n.add_net();
        let y = n.add_net();
        n.add_gate(CellKind::Inverter, vec![mid], vec![y]); // consumer first
        n.add_gate(CellKind::And2, vec![a, b], vec![mid]); // producer second
        n.mark_output(y);
        let order = n.topological_gate_order();
        assert_eq!(order, vec![1, 0]);
        assert_eq!(n.simulate_outputs(&[true, true]), vec![false]);
    }

    #[test]
    #[should_panic(expected = "unallocated net")]
    fn add_gate_panics_on_unallocated_net() {
        let mut n = Netlist::new("bad");
        n.add_gate(CellKind::Inverter, vec![99], vec![CONST_ZERO]);
    }
}
