//! # pmlp-hw — bespoke printed-electronics hardware model
//!
//! This crate replaces the Synopsys Design Compiler + PrimeTime + EGT
//! cell-library flow used by the paper with an architectural synthesis and
//! estimation engine for *bespoke* MLP circuits:
//!
//! * [`cell`] — an Electrolyte-Gated Transistor (EGT) standard-cell library
//!   with per-cell area, static power and delay,
//! * [`fixed`] — fixed-point weight/input formats,
//! * [`csd`] — canonical-signed-digit recoding of hard-wired coefficients,
//! * [`constmul`] — shift-add synthesis of constant-coefficient multipliers,
//! * [`cost`] — the analytic fast-path cost model: area/power/timing without
//!   building a netlist, with a process-wide memoized multiplier cost cache,
//! * [`adder`] — ripple-carry adders and balanced adder trees,
//! * [`netlist`] — a gate-level netlist with area/power/critical-path
//!   analysis,
//! * [`neuron`] / [`circuit`] — bespoke neurons and whole-MLP circuits,
//!   including multiplier sharing for clustered weights,
//! * [`intinfer`] — a pure-integer inference engine, bit-identical to
//!   gate-level netlist simulation, for scoring candidate accuracy on the
//!   exact arithmetic the printed circuit performs,
//! * [`analysis`] / [`report`] — synthesis-style reports.
//!
//! In a bespoke implementation every weight is a hard-wired constant, so the
//! area of a neuron is dominated by (a) how many weights are non-zero
//! (pruning), (b) how many non-zero *digits* each weight has at the chosen
//! precision (quantization) and (c) how many distinct products per input have
//! to be computed (weight clustering / multiplier sharing). Those are exactly
//! the effects the paper's three minimization techniques exploit.
//!
//! ## Example
//!
//! ```
//! use pmlp_hw::{CircuitSpec, LayerSpec, HwActivation, CellLibrary, BespokeMlpCircuit};
//!
//! # fn main() -> Result<(), pmlp_hw::HwError> {
//! // A 2-input, 2-neuron single-layer classifier with 4-bit weights.
//! let spec = CircuitSpec::new(
//!     4,
//!     vec![LayerSpec::new(
//!         vec![vec![3, -2], vec![0, 5]],
//!         4,
//!         HwActivation::Argmax,
//!     )?],
//! )?;
//! let circuit = BespokeMlpCircuit::synthesize(&spec, &CellLibrary::egt())?;
//! assert!(circuit.area().total_mm2 > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adder;
pub mod analysis;
pub mod cell;
pub mod circuit;
pub mod constmul;
pub mod cost;
pub mod csd;
pub mod error;
pub mod fixed;
pub mod intinfer;
pub mod netlist;
pub mod neuron;
pub mod report;
pub mod verilog;

pub use analysis::{AreaReport, PowerReport, TimingReport};
pub use cell::{CellKind, CellLibrary, CellParams};
pub use circuit::{BespokeMlpCircuit, CircuitSpec, HwActivation, LayerSpec, SharingStrategy};
pub use cost::{estimate_circuit, multiplier_cache_stats, CostCacheStats, CostReport};
pub use csd::CsdDigits;
pub use error::HwError;
pub use fixed::FixedPointFormat;
pub use intinfer::{quantize_rows, IntInferEngine};
pub use netlist::{Gate, Netlist};
pub use neuron::NeuronCircuit;
pub use report::SynthesisReport;
pub use verilog::{to_verilog, VerilogOptions};
