//! Whole-network bespoke circuit synthesis.
//!
//! A [`CircuitSpec`] describes a quantized MLP as integer weight matrices;
//! [`BespokeMlpCircuit::synthesize`] turns it into a gate-level netlist using
//! the EGT cell library, with optional multiplier sharing for clustered
//! weights and an argmax comparator tree on the output layer.

use crate::adder::{self, Word};
use crate::analysis::{AreaReport, PowerReport, TimingReport};
use crate::cell::CellLibrary;
use crate::constmul::RecodingStrategy;
use crate::error::HwError;
use crate::netlist::Netlist;
use crate::neuron::{build_neuron, NeuronSpec, ProductCache};
use crate::report::SynthesisReport;
use serde::{Deserialize, Serialize};

/// Activation implemented in hardware after a layer's adder trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HwActivation {
    /// Rectified linear unit (comparator + AND mask per bit).
    ReLU,
    /// No activation (raw sums).
    Identity,
    /// Argmax comparator/mux tree producing the index of the largest sum;
    /// only meaningful on the output layer of a classifier.
    Argmax,
}

/// Multiplier-sharing strategy used during synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SharingStrategy {
    /// One constant multiplier per non-zero weight (the baseline bespoke
    /// architecture of Mubarik et al.).
    #[default]
    None,
    /// Share the product of `(input, weight value)` pairs across the neurons
    /// of a layer — the hardware counterpart of weight clustering.
    SharedPerInput,
}

/// One fully-connected layer of a [`CircuitSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Integer weights, `weights[neuron][input]`.
    pub weights: Vec<Vec<i64>>,
    /// Integer biases, one per neuron (same fixed-point scale as products).
    pub biases: Vec<i64>,
    /// Bit-width the weights were quantized to (documentation / validation).
    pub weight_bits: u8,
    /// Hardware activation after this layer.
    pub activation: HwActivation,
}

impl LayerSpec {
    /// Creates a layer with zero biases.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidSpec`] when the weight matrix is empty or
    /// ragged, or when a weight does not fit in `weight_bits` signed bits.
    pub fn new(
        weights: Vec<Vec<i64>>,
        weight_bits: u8,
        activation: HwActivation,
    ) -> Result<Self, HwError> {
        let neurons = weights.len();
        let biases = vec![0; neurons];
        LayerSpec::with_biases(weights, biases, weight_bits, activation)
    }

    /// Creates a layer with explicit biases.
    ///
    /// # Errors
    ///
    /// Same as [`LayerSpec::new`], plus a bias-count mismatch.
    pub fn with_biases(
        weights: Vec<Vec<i64>>,
        biases: Vec<i64>,
        weight_bits: u8,
        activation: HwActivation,
    ) -> Result<Self, HwError> {
        let layer = LayerSpec {
            weights,
            biases,
            weight_bits,
            activation,
        };
        layer.validate()?;
        Ok(layer)
    }

    /// Re-checks the invariants [`LayerSpec::with_biases`] establishes; used
    /// by synthesis and the fast-path cost model so hand-constructed specs
    /// (the fields are public) cannot bypass validation.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidSpec`] / [`HwError::InvalidBitWidth`] exactly
    /// as construction would.
    pub fn validate(&self) -> Result<(), HwError> {
        let weights = &self.weights;
        let biases = &self.biases;
        let weight_bits = self.weight_bits;
        if weights.is_empty() {
            return Err(HwError::InvalidSpec {
                context: "layer has no neurons".into(),
            });
        }
        let inputs = weights[0].len();
        if inputs == 0 {
            return Err(HwError::InvalidSpec {
                context: "layer neurons have no inputs".into(),
            });
        }
        if weights.iter().any(|row| row.len() != inputs) {
            return Err(HwError::InvalidSpec {
                context: "ragged weight matrix".into(),
            });
        }
        if biases.len() != weights.len() {
            return Err(HwError::InvalidSpec {
                context: format!("{} biases for {} neurons", biases.len(), weights.len()),
            });
        }
        if weight_bits == 0 || weight_bits > 24 {
            return Err(HwError::InvalidBitWidth {
                context: format!("weight_bits must be in 1..=24, got {weight_bits}"),
            });
        }
        let min = -(1_i64 << (weight_bits - 1));
        let max = (1_i64 << (weight_bits - 1)) - 1;
        if let Some(&w) = weights.iter().flatten().find(|&&w| w < min || w > max) {
            return Err(HwError::InvalidSpec {
                context: format!("weight {w} does not fit in {weight_bits} signed bits"),
            });
        }
        Ok(())
    }

    /// Number of neurons in this layer.
    pub fn neuron_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of inputs each neuron consumes.
    pub fn input_count(&self) -> usize {
        self.weights[0].len()
    }

    /// Total number of non-zero weights (i.e. unsharded multipliers).
    pub fn nonzero_weights(&self) -> usize {
        self.weights.iter().flatten().filter(|&&w| w != 0).count()
    }

    /// Number of distinct `(input, non-zero weight)` pairs — the multiplier
    /// count under [`SharingStrategy::SharedPerInput`].
    pub fn distinct_products(&self) -> usize {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        for row in &self.weights {
            for (i, &w) in row.iter().enumerate() {
                if w != 0 {
                    set.insert((i, w));
                }
            }
        }
        set.len()
    }
}

/// A full bespoke-MLP description: input precision plus a stack of layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitSpec {
    /// Bit-width of the (unsigned) primary inputs.
    pub input_bits: u8,
    /// The layers, input to output.
    pub layers: Vec<LayerSpec>,
}

impl CircuitSpec {
    /// Creates and validates a circuit spec.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidSpec`] when there are no layers or
    /// consecutive layer sizes do not chain, and [`HwError::InvalidBitWidth`]
    /// for an unsupported input precision.
    pub fn new(input_bits: u8, layers: Vec<LayerSpec>) -> Result<Self, HwError> {
        let spec = CircuitSpec { input_bits, layers };
        spec.validate()?;
        Ok(spec)
    }

    /// Re-checks every invariant [`CircuitSpec::new`] establishes, including
    /// the per-layer [`LayerSpec::validate`] checks. Synthesis and the
    /// fast-path cost model both call this, so hand-constructed specs (the
    /// fields are public) cannot bypass validation — without cloning the
    /// layer stack.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidSpec`] / [`HwError::InvalidBitWidth`] exactly
    /// as construction would.
    pub fn validate(&self) -> Result<(), HwError> {
        if self.input_bits == 0 || self.input_bits > 16 {
            return Err(HwError::InvalidBitWidth {
                context: format!("input_bits must be in 1..=16, got {}", self.input_bits),
            });
        }
        if self.layers.is_empty() {
            return Err(HwError::InvalidSpec {
                context: "circuit has no layers".into(),
            });
        }
        for layer in &self.layers {
            layer.validate()?;
        }
        for (i, pair) in self.layers.windows(2).enumerate() {
            if pair[1].input_count() != pair[0].neuron_count() {
                return Err(HwError::InvalidSpec {
                    context: format!(
                        "layer {} expects {} inputs but layer {i} has {} neurons",
                        i + 1,
                        pair[1].input_count(),
                        pair[0].neuron_count()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Number of primary input features.
    pub fn input_count(&self) -> usize {
        self.layers[0].input_count()
    }

    /// Number of outputs (neurons of the last layer).
    pub fn output_count(&self) -> usize {
        self.layers
            .last()
            .expect("at least one layer")
            .neuron_count()
    }
}

/// A synthesized bespoke MLP circuit together with its analysis results.
#[derive(Debug, Clone, PartialEq)]
pub struct BespokeMlpCircuit {
    netlist: Netlist,
    library: CellLibrary,
    outputs: Vec<Word>,
    argmax_index: Option<Word>,
    input_bits: u8,
    input_count: usize,
}

impl BespokeMlpCircuit {
    /// Synthesizes `spec` with the default options (no multiplier sharing,
    /// CSD recoding).
    ///
    /// # Errors
    ///
    /// Propagates [`HwError`] from validation and construction.
    pub fn synthesize(spec: &CircuitSpec, library: &CellLibrary) -> Result<Self, HwError> {
        Self::synthesize_with(spec, library, SharingStrategy::None, RecodingStrategy::Csd)
    }

    /// Synthesizes `spec` with explicit sharing and recoding strategies.
    ///
    /// # Errors
    ///
    /// Propagates [`HwError`] from validation and construction.
    pub fn synthesize_with(
        spec: &CircuitSpec,
        library: &CellLibrary,
        sharing: SharingStrategy,
        recoding: RecodingStrategy,
    ) -> Result<Self, HwError> {
        // Re-validate so hand-constructed specs cannot bypass the checks
        // (without cloning the layer stack).
        spec.validate()?;
        let mut netlist = Netlist::new("bespoke_mlp");
        // Primary inputs: unsigned `input_bits` values, carried as signed words
        // with one extra (zero) sign bit.
        let width = spec.input_bits as usize + 1;
        let mut current: Vec<Word> = (0..spec.input_count())
            .map(|_| {
                let mut w = adder::input_word(&mut netlist, spec.input_bits as usize);
                w.push(crate::netlist::CONST_ZERO);
                debug_assert_eq!(w.len(), width);
                w
            })
            .collect();

        let mut argmax_index = None;
        let layer_count = spec.layers.len();
        for (li, layer) in spec.layers.iter().enumerate() {
            let mut cache = ProductCache::new();
            let mut outputs: Vec<Word> = Vec::with_capacity(layer.neuron_count());
            for (ni, row) in layer.weights.iter().enumerate() {
                let neuron = NeuronSpec {
                    weights: row.clone(),
                    bias: layer.biases[ni],
                    relu: layer.activation == HwActivation::ReLU,
                };
                let cache_ref = match sharing {
                    SharingStrategy::SharedPerInput => Some(&mut cache),
                    SharingStrategy::None => None,
                };
                let out = build_neuron(&mut netlist, &current, &neuron, cache_ref, recoding)?;
                outputs.push(out);
            }
            if layer.activation == HwActivation::Argmax {
                if li != layer_count - 1 {
                    return Err(HwError::InvalidSpec {
                        context: format!("argmax activation on non-output layer {li}"),
                    });
                }
                argmax_index = Some(build_argmax(&mut netlist, &outputs));
            }
            current = outputs;
        }

        // Mark primary outputs: the argmax index if present, otherwise the raw
        // output words.
        if let Some(index) = &argmax_index {
            for &net in index {
                netlist.mark_output(net);
            }
        } else {
            for word in &current {
                for &net in word {
                    netlist.mark_output(net);
                }
            }
        }

        Ok(BespokeMlpCircuit {
            netlist,
            library: library.clone(),
            outputs: current,
            argmax_index,
            input_bits: spec.input_bits,
            input_count: spec.input_count(),
        })
    }

    /// The synthesized netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Area report under the circuit's library.
    pub fn area(&self) -> AreaReport {
        self.netlist.area(&self.library)
    }

    /// Static-power report under the circuit's library.
    pub fn power(&self) -> PowerReport {
        self.netlist.power(&self.library)
    }

    /// Critical-path timing report under the circuit's library.
    pub fn timing(&self) -> TimingReport {
        self.netlist.timing(&self.library)
    }

    /// Full synthesis-style report.
    pub fn report(&self) -> SynthesisReport {
        SynthesisReport {
            design_name: self.netlist.name().to_string(),
            library_name: self.library.name().to_string(),
            area: self.area(),
            power: self.power(),
            timing: self.timing(),
        }
    }

    /// Evaluates the circuit on unsigned integer inputs (each in
    /// `0..2^input_bits`), returning the raw output values of the last layer.
    /// Intended for functional verification and examples.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of circuit inputs.
    pub fn evaluate(&self, inputs: &[u64]) -> Vec<i64> {
        let values = self.simulate(inputs);
        self.outputs
            .iter()
            .map(|w| adder::word_value(&values, w))
            .collect()
    }

    /// Evaluates the circuit and returns the argmax class index (either from
    /// the hardware argmax tree, or computed from the raw outputs when the
    /// spec had no argmax layer).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of circuit inputs.
    pub fn classify(&self, inputs: &[u64]) -> usize {
        let values = self.simulate(inputs);
        match &self.argmax_index {
            Some(index) => adder::word_value(&values, index) as usize,
            None => {
                let outs: Vec<i64> = self
                    .outputs
                    .iter()
                    .map(|w| adder::word_value(&values, w))
                    .collect();
                outs.iter()
                    .enumerate()
                    .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
        }
    }

    fn simulate(&self, inputs: &[u64]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.input_count,
            "expected {} inputs",
            self.input_count
        );
        let bits_per_input = self.input_bits as usize;
        let mut bits = Vec::with_capacity(inputs.len() * bits_per_input);
        for &v in inputs {
            assert!(
                v < (1_u64 << bits_per_input),
                "input {v} does not fit in {bits_per_input} unsigned bits"
            );
            for i in 0..bits_per_input {
                bits.push((v >> i) & 1 == 1);
            }
        }
        self.netlist.simulate(&bits)
    }
}

/// Builds an argmax comparator/mux tree over the neuron output words and
/// returns the word holding the winning index (ties go to the lower index).
fn build_argmax(netlist: &mut Netlist, outputs: &[Word]) -> Word {
    let n = outputs.len();
    let index_bits = (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize;
    let mut best_value = outputs[0].clone();
    let mut best_index = adder::constant_word(0, index_bits + 1);
    for (i, candidate) in outputs.iter().enumerate().skip(1) {
        let is_greater = adder::greater_than(netlist, candidate, &best_value);
        best_value = adder::mux_word(netlist, is_greater, &best_value, candidate);
        let candidate_index = adder::constant_word(i as i64, index_bits + 1);
        best_index = adder::mux_word(netlist, is_greater, &best_index, &candidate_index);
    }
    best_index
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_spec() -> CircuitSpec {
        // 3 inputs -> 2 hidden (ReLU) -> 2 outputs (argmax)
        CircuitSpec::new(
            4,
            vec![
                LayerSpec::new(vec![vec![2, -1, 3], vec![-2, 4, 1]], 4, HwActivation::ReLU)
                    .unwrap(),
                LayerSpec::new(vec![vec![1, -2], vec![-3, 2]], 4, HwActivation::Argmax).unwrap(),
            ],
        )
        .unwrap()
    }

    fn reference_forward(spec: &CircuitSpec, inputs: &[i64]) -> Vec<i64> {
        let mut current: Vec<i64> = inputs.to_vec();
        for layer in &spec.layers {
            let mut next = Vec::new();
            for (row, &bias) in layer.weights.iter().zip(layer.biases.iter()) {
                let mut sum: i64 = row.iter().zip(current.iter()).map(|(w, x)| w * x).sum();
                sum += bias;
                if layer.activation == HwActivation::ReLU {
                    sum = sum.max(0);
                }
                next.push(sum);
            }
            current = next;
        }
        current
    }

    #[test]
    fn layer_spec_validation() {
        assert!(LayerSpec::new(vec![], 4, HwActivation::ReLU).is_err());
        assert!(LayerSpec::new(vec![vec![]], 4, HwActivation::ReLU).is_err());
        assert!(LayerSpec::new(vec![vec![1, 2], vec![3]], 4, HwActivation::ReLU).is_err());
        assert!(LayerSpec::new(vec![vec![100]], 4, HwActivation::ReLU).is_err());
        assert!(LayerSpec::new(vec![vec![1]], 0, HwActivation::ReLU).is_err());
        assert!(LayerSpec::with_biases(vec![vec![1]], vec![1, 2], 4, HwActivation::ReLU).is_err());
        assert!(LayerSpec::new(vec![vec![7, -8]], 4, HwActivation::ReLU).is_ok());
    }

    #[test]
    fn circuit_spec_validation() {
        let l1 = LayerSpec::new(vec![vec![1, 2]], 4, HwActivation::ReLU).unwrap();
        let l2_bad = LayerSpec::new(vec![vec![1, 2, 3]], 4, HwActivation::Identity).unwrap();
        assert!(CircuitSpec::new(4, vec![l1.clone(), l2_bad]).is_err());
        assert!(CircuitSpec::new(0, vec![l1.clone()]).is_err());
        assert!(CircuitSpec::new(4, vec![]).is_err());
        assert!(CircuitSpec::new(4, vec![l1]).is_ok());
    }

    #[test]
    fn argmax_must_be_on_last_layer() {
        let l1 = LayerSpec::new(vec![vec![1, 2], vec![2, 1]], 4, HwActivation::Argmax).unwrap();
        let l2 = LayerSpec::new(vec![vec![1, 1]], 4, HwActivation::Identity).unwrap();
        let spec = CircuitSpec::new(4, vec![l1, l2]).unwrap();
        assert!(BespokeMlpCircuit::synthesize(&spec, &CellLibrary::egt()).is_err());
    }

    #[test]
    fn circuit_matches_reference_forward_pass() {
        let spec = simple_spec();
        let circuit = BespokeMlpCircuit::synthesize(&spec, &CellLibrary::egt()).unwrap();
        for inputs in [
            [0_u64, 0, 0],
            [1, 2, 3],
            [15, 15, 15],
            [7, 0, 9],
            [3, 14, 5],
        ] {
            let signed: Vec<i64> = inputs.iter().map(|&v| v as i64).collect();
            let expected = reference_forward(&spec, &signed);
            assert_eq!(circuit.evaluate(&inputs), expected, "inputs {inputs:?}");
            let expected_class = expected
                .iter()
                .enumerate()
                .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(
                circuit.classify(&inputs),
                expected_class,
                "inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn sharing_reduces_area_for_clustered_weights() {
        // All neurons share the same weight per input position (fully
        // clustered): sharing should remove redundant multipliers.
        let lib = CellLibrary::egt();
        let weights = vec![vec![5, -3, 7]; 6];
        let layer = LayerSpec::new(weights, 4, HwActivation::Identity).unwrap();
        let spec = CircuitSpec::new(4, vec![layer]).unwrap();
        let unshared = BespokeMlpCircuit::synthesize_with(
            &spec,
            &lib,
            SharingStrategy::None,
            RecodingStrategy::Csd,
        )
        .unwrap();
        let shared = BespokeMlpCircuit::synthesize_with(
            &spec,
            &lib,
            SharingStrategy::SharedPerInput,
            RecodingStrategy::Csd,
        )
        .unwrap();
        assert!(shared.area().total_mm2 < unshared.area().total_mm2);
    }

    #[test]
    fn sharing_preserves_functionality() {
        let spec = simple_spec();
        let lib = CellLibrary::egt();
        let unshared = BespokeMlpCircuit::synthesize(&spec, &lib).unwrap();
        let shared = BespokeMlpCircuit::synthesize_with(
            &spec,
            &lib,
            SharingStrategy::SharedPerInput,
            RecodingStrategy::Csd,
        )
        .unwrap();
        for inputs in [[0_u64, 5, 9], [12, 3, 1], [15, 0, 8]] {
            assert_eq!(unshared.evaluate(&inputs), shared.evaluate(&inputs));
        }
    }

    #[test]
    fn lower_weight_precision_gives_smaller_circuits() {
        // The quantization mechanism: the same real-valued weights quantized
        // to fewer bits produce smaller integer constants with fewer non-zero
        // digits, hence fewer gates.
        let lib = CellLibrary::egt();
        let real_weights = [0.63_f64, -0.41, 0.27, 0.88, -0.19, 0.55];
        let build = |bits: u8| {
            let scale = (1_i64 << (bits - 1)) as f64;
            let ints: Vec<i64> = real_weights
                .iter()
                .map(|w| {
                    ((w * scale).round() as i64).clamp(-(1 << (bits - 1)), (1 << (bits - 1)) - 1)
                })
                .collect();
            let layer = LayerSpec::new(
                vec![ints[0..3].to_vec(), ints[3..6].to_vec()],
                bits,
                HwActivation::ReLU,
            )
            .unwrap();
            let spec = CircuitSpec::new(4, vec![layer]).unwrap();
            BespokeMlpCircuit::synthesize(&spec, &lib)
                .unwrap()
                .area()
                .total_mm2
        };
        let a3 = build(3);
        let a5 = build(5);
        let a7 = build(7);
        assert!(a3 < a5, "3-bit {a3} vs 5-bit {a5}");
        assert!(a5 < a7, "5-bit {a5} vs 7-bit {a7}");
    }

    #[test]
    fn pruned_spec_is_smaller() {
        let lib = CellLibrary::egt();
        let dense = LayerSpec::new(
            vec![vec![3, 5, -7, 6], vec![2, -3, 4, -5]],
            4,
            HwActivation::ReLU,
        )
        .unwrap();
        let pruned = LayerSpec::new(
            vec![vec![3, 0, -7, 0], vec![0, -3, 0, -5]],
            4,
            HwActivation::ReLU,
        )
        .unwrap();
        let dense_area =
            BespokeMlpCircuit::synthesize(&CircuitSpec::new(4, vec![dense]).unwrap(), &lib)
                .unwrap()
                .area()
                .total_mm2;
        let pruned_area =
            BespokeMlpCircuit::synthesize(&CircuitSpec::new(4, vec![pruned]).unwrap(), &lib)
                .unwrap()
                .area()
                .total_mm2;
        assert!(pruned_area < dense_area);
    }

    #[test]
    fn report_contains_all_sections() {
        let circuit = BespokeMlpCircuit::synthesize(&simple_spec(), &CellLibrary::egt()).unwrap();
        let report = circuit.report();
        assert!(report.area.total_mm2 > 0.0);
        assert!(report.power.total_uw > 0.0);
        assert!(report.timing.critical_path_us > 0.0);
        let text = report.to_string();
        assert!(text.contains("bespoke_mlp"));
        assert!(text.contains("EGT"));
    }

    #[test]
    fn distinct_products_counts_clustered_weights() {
        let layer = LayerSpec::new(
            vec![vec![5, 3], vec![5, 3], vec![5, -3]],
            4,
            HwActivation::ReLU,
        )
        .unwrap();
        assert_eq!(layer.nonzero_weights(), 6);
        assert_eq!(layer.distinct_products(), 3); // (0,5), (1,3), (1,-3)
    }
}
