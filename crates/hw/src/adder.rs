//! Word-level arithmetic builders: two's-complement ripple-carry adders,
//! subtractors, negation, balanced adder trees and comparators.
//!
//! A *word* is a little-endian vector of net ids interpreted as a signed
//! two's-complement value of fixed width. All builders append gates to a
//! caller-supplied [`Netlist`] and return the nets of the result word.
//! Sign extension and shifting are pure wiring (no gates), matching how a
//! bespoke printed circuit would route them.

use crate::cell::CellKind;
use crate::netlist::{NetId, Netlist, CONST_ONE, CONST_ZERO};

/// A signed two's-complement word: little-endian bit nets.
pub type Word = Vec<NetId>;

/// Builds a word holding the constant `value` in `width` bits (pure wiring to
/// the constant nets, no gates).
///
/// # Panics
///
/// Panics if `width` is 0 or the value does not fit in `width` signed bits.
pub fn constant_word(value: i64, width: usize) -> Word {
    assert!(width > 0, "constant word width must be > 0");
    let min = -(1_i64 << (width - 1));
    let max = (1_i64 << (width - 1)) - 1;
    assert!(
        (min..=max).contains(&value),
        "constant {value} does not fit in {width} signed bits"
    );
    (0..width)
        .map(|i| {
            if (value >> i) & 1 == 1 {
                CONST_ONE
            } else {
                CONST_ZERO
            }
        })
        .collect()
}

/// Allocates a primary-input word of `width` bits.
pub fn input_word(netlist: &mut Netlist, width: usize) -> Word {
    (0..width).map(|_| netlist.add_input()).collect()
}

/// Sign-extends (or truncates) `word` to `width` bits. Pure wiring.
///
/// # Panics
///
/// Panics if `word` is empty.
pub fn resize(word: &[NetId], width: usize) -> Word {
    assert!(!word.is_empty(), "cannot resize an empty word");
    let sign = *word.last().expect("non-empty word");
    (0..width)
        .map(|i| if i < word.len() { word[i] } else { sign })
        .collect()
}

/// Shifts `word` left by `k` bits (multiplication by `2^k`), widening the
/// result by `k` bits. Pure wiring.
pub fn shift_left(word: &[NetId], k: usize) -> Word {
    let mut out = vec![CONST_ZERO; k];
    out.extend_from_slice(word);
    out
}

/// Adds two signed words, producing a `max(len) + 1`-bit result (no overflow).
pub fn add(netlist: &mut Netlist, a: &[NetId], b: &[NetId]) -> Word {
    add_with_carry(netlist, a, b, CONST_ZERO, false)
}

/// Subtracts `b` from `a` (`a - b`), producing a `max(len) + 1`-bit result.
pub fn sub(netlist: &mut Netlist, a: &[NetId], b: &[NetId]) -> Word {
    add_with_carry(netlist, a, b, CONST_ONE, true)
}

/// Two's-complement negation of a word (`-a`), one bit wider than the input.
pub fn negate(netlist: &mut Netlist, a: &[NetId]) -> Word {
    let zero = constant_word(0, a.len());
    sub(netlist, &zero, a)
}

fn add_with_carry(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    carry_in: NetId,
    invert_b: bool,
) -> Word {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "adder operands must be non-empty"
    );
    let width = a.len().max(b.len()) + 1;
    let a_ext = resize(a, width);
    let b_ext = resize(b, width);
    let mut carry = carry_in;
    let mut sum = Vec::with_capacity(width);
    for i in 0..width {
        let b_bit = if invert_b {
            let inv = netlist.add_net();
            netlist.add_gate(CellKind::Inverter, vec![b_ext[i]], vec![inv]);
            inv
        } else {
            b_ext[i]
        };
        let s = netlist.add_net();
        let c = netlist.add_net();
        // Use a half adder when the carry-in is the constant zero (first stage
        // of a plain addition), a full adder otherwise.
        if carry == CONST_ZERO {
            netlist.add_gate(CellKind::HalfAdder, vec![a_ext[i], b_bit], vec![s, c]);
        } else {
            netlist.add_gate(
                CellKind::FullAdder,
                vec![a_ext[i], b_bit, carry],
                vec![s, c],
            );
        }
        sum.push(s);
        carry = c;
    }
    sum
}

/// Sums an arbitrary number of signed words with a balanced binary adder tree.
/// Returns a word wide enough to hold the full sum; an empty operand list
/// yields the 1-bit constant zero.
pub fn adder_tree(netlist: &mut Netlist, operands: &[Word]) -> Word {
    match operands.len() {
        0 => constant_word(0, 1),
        1 => operands[0].clone(),
        _ => {
            let mut level: Vec<Word> = operands.to_vec();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut iter = level.chunks(2);
                for chunk in &mut iter {
                    if chunk.len() == 2 {
                        next.push(add(netlist, &chunk[0], &chunk[1]));
                    } else {
                        next.push(chunk[0].clone());
                    }
                }
                level = next;
            }
            level.pop().expect("adder tree leaves a single word")
        }
    }
}

/// Rectified linear unit on a signed word: outputs `a` when `a >= 0` and `0`
/// otherwise (one inverter on the sign bit plus one AND gate per bit).
pub fn relu(netlist: &mut Netlist, a: &[NetId]) -> Word {
    assert!(!a.is_empty(), "relu operand must be non-empty");
    let sign = *a.last().expect("non-empty word");
    let not_sign = netlist.add_net();
    netlist.add_gate(CellKind::Inverter, vec![sign], vec![not_sign]);
    a.iter()
        .map(|&bit| {
            let out = netlist.add_net();
            netlist.add_gate(CellKind::And2, vec![bit, not_sign], vec![out]);
            out
        })
        .collect()
}

/// Greater-than comparator for signed words: the returned net is 1 when
/// `a > b` (computed as the sign of `b - a`).
pub fn greater_than(netlist: &mut Netlist, a: &[NetId], b: &[NetId]) -> NetId {
    let diff = sub(netlist, b, a);
    *diff.last().expect("difference word is non-empty")
}

/// Selects between two words with a shared select net (`sel ? on_true :
/// on_false`), one mux per bit. Both words are resized to the wider width.
pub fn mux_word(netlist: &mut Netlist, sel: NetId, on_false: &[NetId], on_true: &[NetId]) -> Word {
    let width = on_false.len().max(on_true.len());
    let f = resize(on_false, width);
    let t = resize(on_true, width);
    (0..width)
        .map(|i| {
            let out = netlist.add_net();
            netlist.add_gate(CellKind::Mux2, vec![sel, f[i], t[i]], vec![out]);
            out
        })
        .collect()
}

/// Decodes a word from simulated net values into a signed integer
/// (two's complement). Intended for tests and functional verification.
pub fn word_value(values: &[bool], word: &[NetId]) -> i64 {
    let mut v: i64 = 0;
    for (i, &net) in word.iter().enumerate() {
        if values[net] {
            v |= 1_i64 << i;
        }
    }
    // Sign-extend from the word's MSB.
    let width = word.len();
    if width < 64 && (v >> (width - 1)) & 1 == 1 {
        v -= 1_i64 << width;
    }
    v
}

/// Drives a word's nets as primary-input values for simulation (little-endian
/// two's complement). Intended for tests.
pub fn encode_value(value: i64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_binary_op(
        op: impl Fn(&mut Netlist, &[NetId], &[NetId]) -> Word,
        reference: impl Fn(i64, i64) -> i64,
        width: usize,
    ) {
        let mut netlist = Netlist::new("op");
        let a = input_word(&mut netlist, width);
        let b = input_word(&mut netlist, width);
        let y = op(&mut netlist, &a, &b);
        let lo = -(1_i64 << (width - 1));
        let hi = (1_i64 << (width - 1)) - 1;
        for av in lo..=hi {
            for bv in lo..=hi {
                let mut inputs = encode_value(av, width);
                inputs.extend(encode_value(bv, width));
                let values = netlist.simulate(&inputs);
                assert_eq!(
                    word_value(&values, &y),
                    reference(av, bv),
                    "op({av}, {bv}) with width {width}"
                );
            }
        }
    }

    #[test]
    fn addition_is_exact_for_all_4_bit_pairs() {
        check_binary_op(add, |a, b| a + b, 4);
    }

    #[test]
    fn subtraction_is_exact_for_all_4_bit_pairs() {
        check_binary_op(sub, |a, b| a - b, 4);
    }

    #[test]
    fn negation_matches_reference() {
        let width = 5;
        let mut netlist = Netlist::new("neg");
        let a = input_word(&mut netlist, width);
        let y = negate(&mut netlist, &a);
        for v in -16_i64..=15 {
            let values = netlist.simulate(&encode_value(v, width));
            assert_eq!(word_value(&values, &y), -v, "negate({v})");
        }
    }

    #[test]
    fn constant_word_encodes_twos_complement() {
        let w = constant_word(-3, 4);
        // -3 = 1101b
        assert_eq!(w, vec![CONST_ONE, CONST_ZERO, CONST_ONE, CONST_ONE]);
        let zeros = constant_word(0, 3);
        assert_eq!(zeros, vec![CONST_ZERO; 3]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn constant_word_rejects_overflow() {
        let _ = constant_word(8, 4);
    }

    #[test]
    fn resize_sign_extends() {
        let mut netlist = Netlist::new("rs");
        let a = input_word(&mut netlist, 3);
        let wide = resize(&a, 6);
        assert_eq!(wide.len(), 6);
        assert_eq!(wide[3], a[2]);
        assert_eq!(wide[5], a[2]);
        // Value is preserved under sign extension.
        for v in -4_i64..=3 {
            let values = netlist.simulate(&encode_value(v, 3));
            assert_eq!(word_value(&values, &wide), v);
        }
    }

    #[test]
    fn shift_left_multiplies_by_power_of_two() {
        let mut netlist = Netlist::new("shl");
        let a = input_word(&mut netlist, 4);
        let shifted = shift_left(&a, 3);
        for v in -8_i64..=7 {
            let values = netlist.simulate(&encode_value(v, 4));
            assert_eq!(word_value(&values, &shifted), v * 8);
        }
    }

    #[test]
    fn adder_tree_sums_many_operands() {
        let mut netlist = Netlist::new("tree");
        let words: Vec<Word> = (0..5).map(|_| input_word(&mut netlist, 4)).collect();
        let sum = adder_tree(&mut netlist, &words);
        let operands = [3_i64, -8, 7, 0, -1];
        let mut inputs = Vec::new();
        for &v in &operands {
            inputs.extend(encode_value(v, 4));
        }
        let values = netlist.simulate(&inputs);
        assert_eq!(word_value(&values, &sum), operands.iter().sum::<i64>());
    }

    #[test]
    fn adder_tree_handles_empty_and_single() {
        let mut netlist = Netlist::new("tree0");
        assert_eq!(adder_tree(&mut netlist, &[]), constant_word(0, 1));
        let w = input_word(&mut netlist, 3);
        assert_eq!(adder_tree(&mut netlist, std::slice::from_ref(&w)), w);
    }

    #[test]
    fn relu_clamps_negative_values_to_zero() {
        let mut netlist = Netlist::new("relu");
        let a = input_word(&mut netlist, 5);
        let y = relu(&mut netlist, &a);
        for v in -16_i64..=15 {
            let values = netlist.simulate(&encode_value(v, 5));
            assert_eq!(word_value(&values, &y), v.max(0), "relu({v})");
        }
    }

    #[test]
    fn greater_than_compares_signed_values() {
        let mut netlist = Netlist::new("gt");
        let a = input_word(&mut netlist, 4);
        let b = input_word(&mut netlist, 4);
        let gt = greater_than(&mut netlist, &a, &b);
        for av in -8_i64..=7 {
            for bv in -8_i64..=7 {
                let mut inputs = encode_value(av, 4);
                inputs.extend(encode_value(bv, 4));
                let values = netlist.simulate(&inputs);
                assert_eq!(values[gt], av > bv, "{av} > {bv}");
            }
        }
    }

    #[test]
    fn mux_word_selects_between_words() {
        let mut netlist = Netlist::new("muxw");
        let sel = netlist.add_input();
        let a = input_word(&mut netlist, 3);
        let b = input_word(&mut netlist, 3);
        let y = mux_word(&mut netlist, sel, &a, &b);
        let mut inputs = vec![false];
        inputs.extend(encode_value(2, 3));
        inputs.extend(encode_value(-3, 3));
        let values = netlist.simulate(&inputs);
        assert_eq!(word_value(&values, &y), 2);
        let mut inputs = vec![true];
        inputs.extend(encode_value(2, 3));
        inputs.extend(encode_value(-3, 3));
        let values = netlist.simulate(&inputs);
        assert_eq!(word_value(&values, &y), -3);
    }

    #[test]
    fn adder_uses_half_adders_for_initial_carry() {
        let mut netlist = Netlist::new("ha");
        let a = input_word(&mut netlist, 4);
        let b = input_word(&mut netlist, 4);
        let _ = add(&mut netlist, &a, &b);
        let counts = netlist.count_by_kind();
        assert!(counts.get(&CellKind::HalfAdder).copied().unwrap_or(0) >= 1);
    }

    #[test]
    fn subtractor_is_larger_than_adder() {
        let lib = crate::cell::CellLibrary::egt();
        let mut na = Netlist::new("a");
        let a = input_word(&mut na, 6);
        let b = input_word(&mut na, 6);
        let _ = add(&mut na, &a, &b);
        let mut ns = Netlist::new("s");
        let a = input_word(&mut ns, 6);
        let b = input_word(&mut ns, 6);
        let _ = sub(&mut ns, &a, &b);
        assert!(ns.area(&lib).total_mm2 > na.area(&lib).total_mm2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn add_matches_integer_addition(a in -128_i64..127, b in -128_i64..127) {
            let width = 8;
            let mut netlist = Netlist::new("p");
            let wa = input_word(&mut netlist, width);
            let wb = input_word(&mut netlist, width);
            let y = add(&mut netlist, &wa, &wb);
            let mut inputs = encode_value(a, width);
            inputs.extend(encode_value(b, width));
            let values = netlist.simulate(&inputs);
            prop_assert_eq!(word_value(&values, &y), a + b);
        }

        #[test]
        fn tree_sum_matches_reference(values_in in proptest::collection::vec(-64_i64..63, 1..8)) {
            let width = 7;
            let mut netlist = Netlist::new("p");
            let words: Vec<Word> = (0..values_in.len()).map(|_| input_word(&mut netlist, width)).collect();
            let sum = adder_tree(&mut netlist, &words);
            let mut inputs = Vec::new();
            for &v in &values_in {
                inputs.extend(encode_value(v, width));
            }
            let sim = netlist.simulate(&inputs);
            prop_assert_eq!(word_value(&sim, &sum), values_in.iter().sum::<i64>());
        }
    }
}
