//! Combined synthesis-style report for a bespoke circuit.

use crate::analysis::{AreaReport, PowerReport, TimingReport};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Area + power + timing summary of a synthesized bespoke MLP, in the spirit
/// of a Design Compiler `report_area` / `report_power` / `report_timing`
/// triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SynthesisReport {
    /// Name of the synthesized design.
    pub design_name: String,
    /// Cell library used.
    pub library_name: String,
    /// Area breakdown.
    pub area: AreaReport,
    /// Static-power breakdown.
    pub power: PowerReport,
    /// Critical-path timing.
    pub timing: TimingReport,
}

impl SynthesisReport {
    /// Energy per inference in picojoules: static power integrated over one
    /// critical-path delay, `power.total_uw × timing.critical_path_us`
    /// (µW × µs = pJ). Printed electronics run combinational always-on
    /// circuits, so one classification costs the static power held for the
    /// propagation time of the longest path. Always derived — never stored —
    /// so it can't drift from its factors.
    pub fn energy_pj(&self) -> f64 {
        self.power.total_uw * self.timing.critical_path_us
    }
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "==== synthesis report: {} (library {}) ====",
            self.design_name, self.library_name
        )?;
        write!(f, "{}", self.area)?;
        write!(f, "{}", self.power)?;
        write!(f, "{}", self.timing)?;
        writeln!(f, "energy per inference: {:.3} pJ", self.energy_pj())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_design_and_library_names() {
        let report = SynthesisReport {
            design_name: "whitewine_mlp".into(),
            library_name: "EGT".into(),
            ..SynthesisReport::default()
        };
        let text = report.to_string();
        assert!(text.contains("whitewine_mlp"));
        assert!(text.contains("EGT"));
    }

    #[test]
    fn energy_is_power_times_critical_path() {
        let report = SynthesisReport {
            power: crate::analysis::PowerReport {
                total_uw: 500.0,
                by_kind: Default::default(),
            },
            timing: crate::analysis::TimingReport {
                critical_path_us: 4.0,
                max_frequency_hz: 250_000.0,
            },
            ..SynthesisReport::default()
        };
        // 500 µW × 4 µs = 2000 pJ.
        assert_eq!(report.energy_pj(), 2000.0);
        assert!(report.to_string().contains("2000.000 pJ"));
        // An empty design consumes nothing per inference.
        assert_eq!(SynthesisReport::default().energy_pj(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        // Use finite timing values: JSON cannot represent the infinite
        // max-frequency of an empty design.
        let report = SynthesisReport {
            design_name: "d".into(),
            library_name: "l".into(),
            timing: crate::analysis::TimingReport {
                critical_path_us: 10.0,
                max_frequency_hz: 1e5,
            },
            ..Default::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: SynthesisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
