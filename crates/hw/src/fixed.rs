//! Fixed-point formats for hard-wired weights and circuit inputs.

use crate::error::HwError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A signed fixed-point format with `total_bits` bits, of which
/// `fractional_bits` are to the right of the binary point.
///
/// Weights quantized to `b` bits in the paper correspond to
/// `FixedPointFormat::new(b, b - 1)` with values in roughly `[-1, 1)`;
/// the format is kept general so wider dynamic ranges can be represented.
///
/// # Example
///
/// ```
/// use pmlp_hw::FixedPointFormat;
///
/// # fn main() -> Result<(), pmlp_hw::HwError> {
/// let q4 = FixedPointFormat::new(4, 3)?;
/// assert_eq!(q4.quantize(0.5)?, 4);        // 0.5 * 2^3
/// assert_eq!(q4.dequantize(4), 0.5);
/// assert_eq!(q4.quantize(-1.0)?, -8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedPointFormat {
    total_bits: u8,
    fractional_bits: u8,
}

impl FixedPointFormat {
    /// Maximum supported total bit-width.
    pub const MAX_BITS: u8 = 24;

    /// Creates a signed fixed-point format.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidBitWidth`] when `total_bits` is zero or
    /// exceeds [`FixedPointFormat::MAX_BITS`], or when `fractional_bits >=
    /// total_bits` would leave no sign/integer bit.
    pub fn new(total_bits: u8, fractional_bits: u8) -> Result<Self, HwError> {
        if total_bits == 0 || total_bits > Self::MAX_BITS {
            return Err(HwError::InvalidBitWidth {
                context: format!(
                    "total_bits must be in 1..={}, got {total_bits}",
                    Self::MAX_BITS
                ),
            });
        }
        if fractional_bits >= total_bits {
            return Err(HwError::InvalidBitWidth {
                context: format!(
                    "fractional_bits ({fractional_bits}) must be smaller than total_bits ({total_bits})"
                ),
            });
        }
        Ok(FixedPointFormat {
            total_bits,
            fractional_bits,
        })
    }

    /// The format used by the paper's `b`-bit weight quantization: `b` bits
    /// with `b - 1` fractional bits, representable range `[-1, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidBitWidth`] when `bits` is 0 or 1 larger than
    /// [`FixedPointFormat::MAX_BITS`].
    pub fn weight_format(bits: u8) -> Result<Self, HwError> {
        if bits < 2 {
            return Err(HwError::InvalidBitWidth {
                context: format!("weight format needs at least 2 bits, got {bits}"),
            });
        }
        FixedPointFormat::new(bits, bits - 1)
    }

    /// Total number of bits.
    pub fn total_bits(&self) -> u8 {
        self.total_bits
    }

    /// Number of fractional bits.
    pub fn fractional_bits(&self) -> u8 {
        self.fractional_bits
    }

    /// The quantization step `2^-fractional_bits`.
    pub fn step(&self) -> f64 {
        2.0_f64.powi(-(self.fractional_bits as i32))
    }

    /// Smallest representable value.
    pub fn min_value(&self) -> f64 {
        -(2.0_f64.powi(self.total_bits as i32 - 1)) * self.step()
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        (2.0_f64.powi(self.total_bits as i32 - 1) - 1.0) * self.step()
    }

    /// Smallest representable integer code.
    pub fn min_code(&self) -> i64 {
        -(1_i64 << (self.total_bits - 1))
    }

    /// Largest representable integer code.
    pub fn max_code(&self) -> i64 {
        (1_i64 << (self.total_bits - 1)) - 1
    }

    /// Quantizes `value` to the nearest representable code, erroring on
    /// overflow.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::Overflow`] when the rounded code does not fit.
    pub fn quantize(&self, value: f64) -> Result<i64, HwError> {
        let code = (value / self.step()).round() as i64;
        if code < self.min_code() || code > self.max_code() {
            return Err(HwError::Overflow {
                value,
                format: self.to_string(),
            });
        }
        Ok(code)
    }

    /// Quantizes `value`, saturating at the representable range instead of
    /// erroring (the behaviour of QAT-style fake quantization).
    pub fn quantize_saturating(&self, value: f64) -> i64 {
        let code = (value / self.step()).round() as i64;
        code.clamp(self.min_code(), self.max_code())
    }

    /// Converts an integer code back to its real value.
    pub fn dequantize(&self, code: i64) -> f64 {
        code as f64 * self.step()
    }

    /// Fake-quantization: quantize (saturating) then dequantize, the round
    /// trip applied to weights during quantization-aware training.
    pub fn fake_quantize(&self, value: f64) -> f64 {
        self.dequantize(self.quantize_saturating(value))
    }
}

impl fmt::Display for FixedPointFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Q{}.{}",
            self.total_bits - self.fractional_bits,
            self.fractional_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_widths() {
        assert!(FixedPointFormat::new(0, 0).is_err());
        assert!(FixedPointFormat::new(4, 4).is_err());
        assert!(FixedPointFormat::new(25, 3).is_err());
        assert!(FixedPointFormat::new(8, 7).is_ok());
        assert!(FixedPointFormat::weight_format(1).is_err());
    }

    #[test]
    fn weight_format_covers_minus_one_to_one() {
        let f = FixedPointFormat::weight_format(4).unwrap();
        assert_eq!(f.min_value(), -1.0);
        assert!((f.max_value() - 0.875).abs() < 1e-12);
        assert_eq!(f.min_code(), -8);
        assert_eq!(f.max_code(), 7);
    }

    #[test]
    fn quantize_round_trips_representable_values() {
        let f = FixedPointFormat::new(6, 4).unwrap();
        for code in f.min_code()..=f.max_code() {
            let v = f.dequantize(code);
            assert_eq!(f.quantize(v).unwrap(), code);
        }
    }

    #[test]
    fn quantize_errors_on_overflow_but_saturating_clamps() {
        let f = FixedPointFormat::weight_format(3).unwrap();
        assert!(f.quantize(5.0).is_err());
        assert_eq!(f.quantize_saturating(5.0), f.max_code());
        assert_eq!(f.quantize_saturating(-5.0), f.min_code());
    }

    #[test]
    fn fake_quantize_error_is_bounded_by_half_step() {
        let f = FixedPointFormat::weight_format(5).unwrap();
        for i in -20..=20 {
            let v = i as f64 * 0.047;
            let q = f.fake_quantize(v);
            if v >= f.min_value() && v <= f.max_value() {
                assert!((v - q).abs() <= f.step() / 2.0 + 1e-12, "{v} -> {q}");
            }
        }
    }

    #[test]
    fn display_uses_q_notation() {
        let f = FixedPointFormat::new(8, 6).unwrap();
        assert_eq!(f.to_string(), "Q2.6");
    }

    #[test]
    fn lower_precision_has_larger_step() {
        let f2 = FixedPointFormat::weight_format(2).unwrap();
        let f7 = FixedPointFormat::weight_format(7).unwrap();
        assert!(f2.step() > f7.step());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn fake_quantize_is_idempotent(bits in 2u8..10, v in -0.999f64..0.999) {
            let f = FixedPointFormat::weight_format(bits).unwrap();
            let once = f.fake_quantize(v);
            let twice = f.fake_quantize(once);
            prop_assert!((once - twice).abs() < 1e-12);
        }

        #[test]
        fn quantize_saturating_stays_in_code_range(bits in 2u8..12, v in -100.0f64..100.0) {
            let f = FixedPointFormat::weight_format(bits).unwrap();
            let code = f.quantize_saturating(v);
            prop_assert!(code >= f.min_code());
            prop_assert!(code <= f.max_code());
        }
    }
}
