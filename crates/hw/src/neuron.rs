//! Bespoke neuron synthesis: hard-wired constant multipliers feeding an adder
//! tree, an optional bias term and an optional ReLU.

use crate::adder::{self, Word};
use crate::constmul::{constant_multiplier, RecodingStrategy};
use crate::error::HwError;
use crate::netlist::Netlist;
use std::collections::BTreeMap;

/// Minimum signed bit-width needed to represent `value`.
pub fn min_signed_width(value: i64) -> usize {
    if value == 0 {
        1
    } else if value > 0 {
        64 - value.leading_zeros() as usize + 1
    } else {
        64 - (-(value + 1)).leading_zeros() as usize + 1
    }
}

/// Cache of already-built products, keyed by `(input index, weight value)`.
///
/// When weight clustering forces several neurons to use the same weight value
/// for the same input, the corresponding product is computed once and shared —
/// the hardware mechanism that makes clustering save area in bespoke circuits.
pub type ProductCache = BTreeMap<(usize, i64), Word>;

/// Parameters of a single bespoke neuron.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeuronSpec {
    /// One hard-wired integer weight per input (zero = pruned connection).
    pub weights: Vec<i64>,
    /// Integer bias, expressed in the same fixed-point scale as the products.
    pub bias: i64,
    /// Apply a ReLU to the accumulated sum.
    pub relu: bool,
}

impl NeuronSpec {
    /// Creates a neuron spec without bias.
    pub fn new(weights: Vec<i64>, relu: bool) -> Self {
        NeuronSpec {
            weights,
            bias: 0,
            relu,
        }
    }

    /// Number of non-zero weights (i.e. multipliers before sharing).
    pub fn active_inputs(&self) -> usize {
        self.weights.iter().filter(|&&w| w != 0).count()
    }
}

/// Appends one bespoke neuron to `netlist`.
///
/// `inputs` holds one word per input of the layer. When `cache` is `Some`,
/// products are looked up / inserted by `(input index, weight)` so identical
/// products are shared between neurons of the same layer.
///
/// Returns the output word of the neuron (post-activation).
///
/// # Errors
///
/// Returns [`HwError::InvalidSpec`] when the weight count does not match the
/// input count.
pub fn build_neuron(
    netlist: &mut Netlist,
    inputs: &[Word],
    spec: &NeuronSpec,
    cache: Option<&mut ProductCache>,
    recoding: RecodingStrategy,
) -> Result<Word, HwError> {
    if spec.weights.len() != inputs.len() {
        return Err(HwError::InvalidSpec {
            context: format!(
                "neuron has {} weights but the layer provides {} inputs",
                spec.weights.len(),
                inputs.len()
            ),
        });
    }

    let mut operands: Vec<Word> = Vec::new();
    match cache {
        Some(cache) => {
            for (i, (&w, input)) in spec.weights.iter().zip(inputs.iter()).enumerate() {
                if w == 0 {
                    continue;
                }
                let product = cache
                    .entry((i, w))
                    .or_insert_with(|| constant_multiplier(netlist, input, w, recoding))
                    .clone();
                operands.push(product);
            }
        }
        None => {
            for (&w, input) in spec.weights.iter().zip(inputs.iter()) {
                if w == 0 {
                    continue;
                }
                operands.push(constant_multiplier(netlist, input, w, recoding));
            }
        }
    }

    if spec.bias != 0 {
        operands.push(adder::constant_word(spec.bias, min_signed_width(spec.bias)));
    }

    let sum = adder::adder_tree(netlist, &operands);
    let out = if spec.relu {
        adder::relu(netlist, &sum)
    } else {
        sum
    };
    Ok(out)
}

/// A standalone synthesized neuron, mainly useful for unit analysis and for
/// the documentation examples; whole networks are built by
/// [`crate::circuit::BespokeMlpCircuit`].
#[derive(Debug, Clone, PartialEq)]
pub struct NeuronCircuit {
    netlist: Netlist,
    output: Word,
    input_bits: usize,
}

impl NeuronCircuit {
    /// Synthesizes a standalone neuron with its own primary inputs of
    /// `input_bits` bits each.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidSpec`] when the spec is empty or
    /// [`HwError::InvalidBitWidth`] when `input_bits` is zero.
    pub fn synthesize(spec: &NeuronSpec, input_bits: usize) -> Result<Self, HwError> {
        if input_bits == 0 {
            return Err(HwError::InvalidBitWidth {
                context: "input_bits must be > 0".into(),
            });
        }
        if spec.weights.is_empty() {
            return Err(HwError::InvalidSpec {
                context: "neuron has no inputs".into(),
            });
        }
        let mut netlist = Netlist::new("neuron");
        let inputs: Vec<Word> = (0..spec.weights.len())
            .map(|_| adder::input_word(&mut netlist, input_bits))
            .collect();
        let output = build_neuron(&mut netlist, &inputs, spec, None, RecodingStrategy::Csd)?;
        for &net in &output {
            netlist.mark_output(net);
        }
        Ok(NeuronCircuit {
            netlist,
            output,
            input_bits,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The output word of the neuron.
    pub fn output(&self) -> &[usize] {
        &self.output
    }

    /// Evaluates the neuron on integer inputs (two's complement of
    /// `input_bits` bits each). Intended for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of neuron inputs.
    pub fn evaluate(&self, inputs: &[i64]) -> i64 {
        let mut bits = Vec::new();
        for &v in inputs {
            bits.extend(adder::encode_value(v, self.input_bits));
        }
        let values = self.netlist.simulate(&bits);
        adder::word_value(&values, &self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;

    #[test]
    fn min_signed_width_known_values() {
        assert_eq!(min_signed_width(0), 1);
        assert_eq!(min_signed_width(1), 2);
        assert_eq!(min_signed_width(-1), 1);
        assert_eq!(min_signed_width(3), 3);
        assert_eq!(min_signed_width(-4), 3);
        assert_eq!(min_signed_width(7), 4);
        assert_eq!(min_signed_width(-8), 4);
    }

    #[test]
    fn neuron_computes_weighted_sum() {
        let spec = NeuronSpec {
            weights: vec![3, -2, 0, 5],
            bias: 0,
            relu: false,
        };
        let neuron = NeuronCircuit::synthesize(&spec, 5).unwrap();
        for inputs in [
            [1_i64, 2, 3, 4],
            [0, 0, 0, 0],
            [-5, 7, 1, -3],
            [15, -16, 8, 2],
        ] {
            let expected: i64 = spec
                .weights
                .iter()
                .zip(inputs.iter())
                .map(|(w, x)| w * x)
                .sum();
            assert_eq!(neuron.evaluate(&inputs), expected, "inputs {inputs:?}");
        }
    }

    #[test]
    fn neuron_with_bias_and_relu() {
        let spec = NeuronSpec {
            weights: vec![1, -1],
            bias: -4,
            relu: true,
        };
        let neuron = NeuronCircuit::synthesize(&spec, 4).unwrap();
        // 2 - 7 - 4 = -9 -> relu -> 0
        assert_eq!(neuron.evaluate(&[2, 7]), 0);
        // 7 - 1 - 4 = 2 -> relu -> 2
        assert_eq!(neuron.evaluate(&[7, 1]), 2);
    }

    #[test]
    fn pruned_weights_reduce_area() {
        let lib = CellLibrary::egt();
        let dense = NeuronSpec {
            weights: vec![3, 5, -7, 6],
            bias: 0,
            relu: false,
        };
        let pruned = NeuronSpec {
            weights: vec![3, 0, 0, 6],
            bias: 0,
            relu: false,
        };
        let dense_area = NeuronCircuit::synthesize(&dense, 4)
            .unwrap()
            .netlist()
            .area(&lib)
            .total_mm2;
        let pruned_area = NeuronCircuit::synthesize(&pruned, 4)
            .unwrap()
            .netlist()
            .area(&lib)
            .total_mm2;
        assert!(pruned_area < dense_area);
        assert_eq!(pruned.active_inputs(), 2);
    }

    #[test]
    fn all_zero_neuron_has_no_gates() {
        let spec = NeuronSpec {
            weights: vec![0, 0, 0],
            bias: 0,
            relu: false,
        };
        let neuron = NeuronCircuit::synthesize(&spec, 4).unwrap();
        assert_eq!(neuron.netlist().gate_count(), 0);
        assert_eq!(neuron.evaluate(&[5, -3, 7]), 0);
    }

    #[test]
    fn shared_products_are_built_once() {
        // Two neurons using the same weight on the same input share the
        // multiplier when a cache is provided.
        let mut netlist = Netlist::new("shared");
        let inputs: Vec<Word> = (0..2).map(|_| adder::input_word(&mut netlist, 4)).collect();
        let mut cache = ProductCache::new();
        let spec_a = NeuronSpec {
            weights: vec![5, 3],
            bias: 0,
            relu: false,
        };
        let spec_b = NeuronSpec {
            weights: vec![5, -3],
            bias: 0,
            relu: false,
        };
        let _ = build_neuron(
            &mut netlist,
            &inputs,
            &spec_a,
            Some(&mut cache),
            RecodingStrategy::Csd,
        )
        .unwrap();
        let gates_after_a = netlist.gate_count();
        let _ = build_neuron(
            &mut netlist,
            &inputs,
            &spec_b,
            Some(&mut cache),
            RecodingStrategy::Csd,
        )
        .unwrap();
        let gates_after_b = netlist.gate_count();
        // Neuron B reuses the (input 0, weight 5) product, so it must add
        // fewer gates than neuron A did.
        assert!(gates_after_b - gates_after_a < gates_after_a);
        assert_eq!(cache.len(), 3); // (0,5), (1,3), (1,-3)
    }

    #[test]
    fn weight_count_mismatch_is_rejected() {
        let mut netlist = Netlist::new("bad");
        let inputs: Vec<Word> = (0..3).map(|_| adder::input_word(&mut netlist, 4)).collect();
        let spec = NeuronSpec {
            weights: vec![1, 2],
            bias: 0,
            relu: false,
        };
        assert!(build_neuron(&mut netlist, &inputs, &spec, None, RecodingStrategy::Csd).is_err());
    }

    #[test]
    fn synthesize_rejects_degenerate_configs() {
        assert!(NeuronCircuit::synthesize(&NeuronSpec::new(vec![], false), 4).is_err());
        assert!(NeuronCircuit::synthesize(&NeuronSpec::new(vec![1], false), 0).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn neuron_matches_dot_product(
            weights in proptest::collection::vec(-15_i64..15, 1..5),
            inputs in proptest::collection::vec(-15_i64..15, 5)
        ) {
            let n = weights.len();
            let spec = NeuronSpec { weights: weights.clone(), bias: 0, relu: false };
            let neuron = NeuronCircuit::synthesize(&spec, 5).unwrap();
            let xs = &inputs[..n];
            let expected: i64 = weights.iter().zip(xs.iter()).map(|(w, x)| w * x).sum();
            prop_assert_eq!(neuron.evaluate(xs), expected);
        }
    }
}
