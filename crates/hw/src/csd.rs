//! Canonical Signed Digit (CSD) recoding of hard-wired constants.
//!
//! A CSD representation writes an integer with digits in `{-1, 0, +1}` such
//! that no two consecutive digits are non-zero. It is the standard recoding
//! for constant-coefficient multipliers because the number of shift-add/sub
//! stages equals the number of non-zero digits, which CSD minimizes (at most
//! ⌈(n+1)/2⌉ non-zero digits for an n-bit constant, ~n/3 on average).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The CSD representation of a signed integer constant.
///
/// Digit `i` (little-endian) carries weight `digit[i] * 2^i`.
///
/// # Example
///
/// ```
/// use pmlp_hw::CsdDigits;
///
/// // 7 = 8 - 1 -> CSD "+00-" i.e. [-1, 0, 0, +1]: two non-zero digits
/// let csd = CsdDigits::from_value(7);
/// assert_eq!(csd.nonzero_count(), 2);
/// assert_eq!(csd.value(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CsdDigits {
    digits: Vec<i8>,
    value: i64,
}

impl CsdDigits {
    /// Recodes `value` into canonical signed-digit form.
    pub fn from_value(value: i64) -> Self {
        if value == 0 {
            return CsdDigits {
                digits: Vec::new(),
                value: 0,
            };
        }
        // Work on the magnitude, then negate the digits for negative values.
        let negative = value < 0;
        let mut x = value.unsigned_abs() as u128;
        let mut digits: Vec<i8> = Vec::new();
        while x != 0 {
            if x & 1 == 1 {
                // Choose +1 or -1 so that the remaining value becomes even and
                // the "no two adjacent non-zeros" property holds: pick -1 when
                // the next two bits are "11" (i.e. x mod 4 == 3).
                let digit: i8 = if x & 3 == 3 { -1 } else { 1 };
                digits.push(digit);
                if digit == 1 {
                    x -= 1;
                } else {
                    x += 1;
                }
            } else {
                digits.push(0);
            }
            x >>= 1;
        }
        if negative {
            for d in &mut digits {
                *d = -*d;
            }
        }
        // Trim trailing zeros (most-significant side).
        while digits.last() == Some(&0) {
            digits.pop();
        }
        CsdDigits { digits, value }
    }

    /// The digits, little-endian (`digits()[i]` weighs `2^i`).
    pub fn digits(&self) -> &[i8] {
        &self.digits
    }

    /// The original integer value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Number of non-zero digits = number of shift-add/sub terms a bespoke
    /// constant multiplier needs.
    pub fn nonzero_count(&self) -> usize {
        self.digits.iter().filter(|&&d| d != 0).count()
    }

    /// Number of digits (position of the most significant non-zero digit + 1);
    /// zero for the constant 0.
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// `true` when the constant is zero.
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// `true` when the constant is zero (a pruned weight: no multiplier at all).
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// `true` when the constant is an exact power of two (possibly negated):
    /// the "multiplier" degenerates to pure wiring (a shift).
    pub fn is_power_of_two(&self) -> bool {
        self.nonzero_count() == 1
    }

    /// The shift amounts (bit positions) of all non-zero digits together with
    /// their signs, i.e. the terms of the shift-add decomposition.
    pub fn terms(&self) -> Vec<(u32, i8)> {
        self.digits
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != 0)
            .map(|(i, &d)| (i as u32, d))
            .collect()
    }

    /// Number of add/sub operations a shift-add multiplier built from this
    /// recoding needs (`nonzero_count - 1`, or 0 for zero / power-of-two
    /// constants).
    pub fn adder_count(&self) -> usize {
        self.nonzero_count().saturating_sub(1)
    }

    /// Number of non-zero digits of the plain two's-complement binary
    /// representation (for the CSD-vs-binary ablation).
    pub fn binary_nonzero_count(value: i64) -> usize {
        value.unsigned_abs().count_ones() as usize
    }
}

impl fmt::Display for CsdDigits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.digits.is_empty() {
            return f.write_str("0");
        }
        // Most-significant digit first.
        for &d in self.digits.iter().rev() {
            let c = match d {
                1 => '+',
                -1 => '-',
                _ => '0',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(csd: &CsdDigits) -> i64 {
        csd.digits()
            .iter()
            .enumerate()
            .map(|(i, &d)| d as i64 * (1_i64 << i))
            .sum()
    }

    #[test]
    fn zero_has_no_digits() {
        let csd = CsdDigits::from_value(0);
        assert!(csd.is_zero());
        assert!(csd.is_empty());
        assert_eq!(csd.nonzero_count(), 0);
        assert_eq!(csd.adder_count(), 0);
        assert_eq!(csd.to_string(), "0");
    }

    #[test]
    fn known_recodings() {
        // 7 = 8 - 1 -> 2 nonzero digits (better than binary's 3)
        assert_eq!(CsdDigits::from_value(7).nonzero_count(), 2);
        // 15 = 16 - 1
        assert_eq!(CsdDigits::from_value(15).nonzero_count(), 2);
        // 5 = 4 + 1 (already CSD)
        assert_eq!(CsdDigits::from_value(5).nonzero_count(), 2);
        // 3 = 4 - 1
        assert_eq!(CsdDigits::from_value(3).nonzero_count(), 2);
        // powers of two have exactly one digit
        for p in [1_i64, 2, 4, 8, 16, 64] {
            assert!(CsdDigits::from_value(p).is_power_of_two(), "{p}");
            assert_eq!(CsdDigits::from_value(p).adder_count(), 0);
        }
    }

    #[test]
    fn reconstruction_matches_value_for_small_range() {
        for v in -256_i64..=256 {
            let csd = CsdDigits::from_value(v);
            assert_eq!(reconstruct(&csd), v, "reconstruction failed for {v}");
            assert_eq!(csd.value(), v);
        }
    }

    #[test]
    fn no_two_adjacent_nonzero_digits() {
        for v in -512_i64..=512 {
            let csd = CsdDigits::from_value(v);
            for pair in csd.digits().windows(2) {
                assert!(
                    pair[0] == 0 || pair[1] == 0,
                    "adjacent non-zero digits in CSD of {v}: {:?}",
                    csd.digits()
                );
            }
        }
    }

    #[test]
    fn csd_never_needs_more_nonzeros_than_binary() {
        for v in 1_i64..=1024 {
            let csd = CsdDigits::from_value(v).nonzero_count();
            let bin = CsdDigits::binary_nonzero_count(v);
            assert!(csd <= bin, "CSD worse than binary for {v}: {csd} vs {bin}");
        }
    }

    #[test]
    fn negative_values_mirror_positive_ones() {
        for v in 1_i64..=100 {
            let pos = CsdDigits::from_value(v);
            let neg = CsdDigits::from_value(-v);
            assert_eq!(pos.nonzero_count(), neg.nonzero_count());
            assert_eq!(reconstruct(&neg), -v);
        }
    }

    #[test]
    fn terms_describe_shift_add_decomposition() {
        let csd = CsdDigits::from_value(7); // 8 - 1
        let terms = csd.terms();
        assert_eq!(terms.len(), 2);
        let total: i64 = terms
            .iter()
            .map(|&(shift, sign)| sign as i64 * (1_i64 << shift))
            .sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn display_is_msb_first() {
        // 7 -> +00- (8 - 1)
        assert_eq!(CsdDigits::from_value(7).to_string(), "+00-");
        assert_eq!(CsdDigits::from_value(-7).to_string(), "-00+");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn csd_reconstructs_every_value(v in -100_000_i64..100_000) {
            let csd = CsdDigits::from_value(v);
            let rec: i64 = csd
                .digits()
                .iter()
                .enumerate()
                .map(|(i, &d)| d as i64 * (1_i64 << i))
                .sum();
            prop_assert_eq!(rec, v);
        }

        #[test]
        fn csd_is_canonical(v in -100_000_i64..100_000) {
            let csd = CsdDigits::from_value(v);
            for pair in csd.digits().windows(2) {
                prop_assert!(pair[0] == 0 || pair[1] == 0);
            }
        }

        #[test]
        fn nonzero_count_at_most_half_plus_one(v in 0_i64..(1 << 16)) {
            let csd = CsdDigits::from_value(v);
            let n = 64 - v.leading_zeros() as usize;
            prop_assert!(csd.nonzero_count() <= n / 2 + 1);
        }
    }
}
