//! Area, power and timing report structures.

use crate::cell::CellKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Cell-area breakdown of a netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AreaReport {
    /// Total cell area in mm².
    pub total_mm2: f64,
    /// Total number of gates.
    pub gate_count: usize,
    /// Per-cell-kind `(instance count, area mm²)`.
    pub by_kind: BTreeMap<CellKind, (usize, f64)>,
}

/// Static-power breakdown of a netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PowerReport {
    /// Total static power in µW.
    pub total_uw: f64,
    /// Per-cell-kind `(instance count, power µW)`.
    pub by_kind: BTreeMap<CellKind, (usize, f64)>,
}

/// Critical-path timing of a netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Longest combinational path in µs.
    pub critical_path_us: f64,
    /// Corresponding maximum operating frequency in Hz (infinite for an empty
    /// netlist).
    pub max_frequency_hz: f64,
}

impl Default for TimingReport {
    fn default() -> Self {
        TimingReport {
            critical_path_us: 0.0,
            max_frequency_hz: f64::INFINITY,
        }
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total area: {:.4} mm2 ({} gates)",
            self.total_mm2, self.gate_count
        )?;
        for (kind, (count, area)) in &self.by_kind {
            writeln!(f, "  {kind:<6} x{count:<6} {area:.4} mm2")?;
        }
        Ok(())
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total static power: {:.3} uW", self.total_uw)?;
        for (kind, (count, power)) in &self.by_kind {
            writeln!(f, "  {kind:<6} x{count:<6} {power:.3} uW")?;
        }
        Ok(())
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "critical path: {:.1} us", self.critical_path_us)?;
        if self.max_frequency_hz.is_finite() {
            writeln!(f, "max frequency: {:.1} Hz", self.max_frequency_hz)
        } else {
            writeln!(f, "max frequency: unbounded (no combinational path)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reports_are_empty() {
        assert_eq!(AreaReport::default().total_mm2, 0.0);
        assert_eq!(PowerReport::default().total_uw, 0.0);
        assert!(TimingReport::default().max_frequency_hz.is_infinite());
    }

    #[test]
    fn display_contains_totals() {
        let mut by_kind = BTreeMap::new();
        by_kind.insert(CellKind::FullAdder, (3usize, 0.576));
        let area = AreaReport {
            total_mm2: 0.576,
            gate_count: 3,
            by_kind,
        };
        let text = area.to_string();
        assert!(text.contains("0.576"));
        assert!(text.contains("FA"));

        let timing = TimingReport {
            critical_path_us: 100.0,
            max_frequency_hz: 10_000.0,
        };
        assert!(timing.to_string().contains("100.0"));
    }
}
