//! Analytic fast-path cost model: area / power / timing of a bespoke MLP
//! circuit **without materializing a netlist**.
//!
//! [`estimate_circuit`] walks a [`CircuitSpec`] with exactly the same
//! structural decisions as [`crate::BespokeMlpCircuit::synthesize_with`] — CSD/binary
//! recoding, shift-add multipliers, balanced adder trees, ReLU masks, the
//! argmax comparator tree and per-input multiplier sharing — but instead of
//! appending gates it only *accounts* for them: per-[`CellKind`] instance
//! counts and per-bit signal arrival times. Area and static power are linear
//! in the instance counts and the critical path is the maximum arrival time,
//! so the resulting [`CostReport`] is **bit-for-bit identical** to running
//! full synthesis followed by [`Netlist::area`](crate::Netlist::area) /
//! [`Netlist::power`](crate::Netlist::power) /
//! [`Netlist::timing`](crate::Netlist::timing) — at a small fraction of the
//! cost (no gate/net allocation, no topological sort, no arrival array).
//!
//! This is what makes hardware-in-the-loop search loops cheap: the NSGA-II /
//! sweep layers evaluate thousands of candidates through this fast path and
//! reserve full synthesis for Pareto-front finalists that need a verifiable
//! netlist (functional simulation, Verilog export).
//!
//! Constant-multiplier costs are memoized process-wide in a `CostCache`
//! keyed by `(code, input width, recoding strategy)`: candidate populations
//! re-use a small set of weight codes over and over, so after warm-up a
//! multiplier costs one hash lookup. [`multiplier_cache_stats`] exposes the
//! hit/miss counters for engine-level reporting.
//!
//! # Example
//!
//! ```
//! use pmlp_hw::{CircuitSpec, LayerSpec, HwActivation, CellLibrary, BespokeMlpCircuit};
//! use pmlp_hw::constmul::RecodingStrategy;
//! use pmlp_hw::cost::estimate_circuit;
//! use pmlp_hw::SharingStrategy;
//!
//! # fn main() -> Result<(), pmlp_hw::HwError> {
//! let spec = CircuitSpec::new(
//!     4,
//!     vec![LayerSpec::new(vec![vec![3, -2], vec![0, 5]], 4, HwActivation::Argmax)?],
//! )?;
//! let library = CellLibrary::egt();
//! let fast = estimate_circuit(&spec, &library, SharingStrategy::None, RecodingStrategy::Csd)?;
//! let full = BespokeMlpCircuit::synthesize(&spec, &library)?;
//! assert_eq!(fast.area, full.area());
//! assert_eq!(fast.power, full.power());
//! assert_eq!(fast.timing, full.timing());
//! # Ok(())
//! # }
//! ```

use crate::analysis::{AreaReport, PowerReport, TimingReport};
use crate::cell::{CellKind, CellLibrary};
use crate::circuit::{CircuitSpec, HwActivation, SharingStrategy};
use crate::constmul::{MultiplierCost, RecodingStrategy};
use crate::csd::CsdDigits;
use crate::error::HwError;
use crate::neuron::min_signed_width;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of distinct [`CellKind`]s (the length of [`CellKind::all`]).
const KIND_COUNT: usize = 12;

/// Per-[`CellKind`] instance counts, indexed by discriminant order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct CellCounts([usize; KIND_COUNT]);

impl CellCounts {
    #[inline]
    fn bump(&mut self, kind: CellKind) {
        self.0[kind as usize] += 1;
    }

    fn add(&mut self, other: &CellCounts) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    fn diff(&self, earlier: &CellCounts) -> CellCounts {
        let mut out = [0usize; KIND_COUNT];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(earlier.0.iter())) {
            *o = a - b;
        }
        CellCounts(out)
    }

    fn total(&self) -> usize {
        self.0.iter().sum()
    }

    /// Per-kind `(count, count * per_cell)` map in the same order
    /// [`crate::Netlist::count_by_kind`] produces, skipping absent kinds.
    fn report_map(
        &self,
        per_cell: impl Fn(CellKind) -> f64,
    ) -> (BTreeMap<CellKind, (usize, f64)>, f64) {
        let mut by_kind = BTreeMap::new();
        let mut total = 0.0;
        for kind in CellKind::all() {
            let count = self.0[kind as usize];
            if count == 0 {
                continue;
            }
            let value = per_cell(kind) * count as f64;
            by_kind.insert(kind, (count, value));
            total += value;
        }
        (by_kind, total)
    }
}

/// The fast-path counterpart of a full synthesis run: the same three analysis
/// reports a [`BespokeMlpCircuit`](crate::BespokeMlpCircuit) produces.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Cell-area breakdown (identical to [`crate::Netlist::area`]).
    pub area: AreaReport,
    /// Static-power breakdown (identical to [`crate::Netlist::power`]).
    pub power: PowerReport,
    /// Critical-path timing (identical to [`crate::Netlist::timing`]).
    pub timing: TimingReport,
}

impl CostReport {
    /// Total gate count of the modelled circuit.
    pub fn gate_count(&self) -> usize {
        self.area.gate_count
    }

    /// Energy per inference in picojoules, `power × critical path`
    /// (µW × µs = pJ) — the fast-path counterpart of
    /// [`SynthesisReport::energy_pj`](crate::SynthesisReport::energy_pj),
    /// bit-identical to it because both factors are.
    pub fn energy_pj(&self) -> f64 {
        self.power.total_uw * self.timing.critical_path_us
    }
}

/// A signal word in the cost model: one arrival time (µs) per bit,
/// little-endian like [`crate::adder::Word`]. Constant bits arrive at 0.
type ArrWord = Vec<f64>;

/// Key of one memoized constant multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MulKey {
    code: i64,
    input_bits: u8,
    recoding: RecodingStrategy,
}

/// Memoized structural cost of one constant multiplier: its recoded shift-add
/// terms and the gates it instantiates for a given input width.
#[derive(Debug, Clone)]
struct MulEntry {
    terms: Arc<[(u32, i8)]>,
    counts: CellCounts,
    cost: MultiplierCost,
}

/// Process-wide memo of constant-multiplier costs.
///
/// Keyed by `(code, input word width, recoding strategy)` — everything a
/// shift-add multiplier's structure depends on. Sharing strategies do not
/// change the per-multiplier cost (they change *how many* multipliers a layer
/// instantiates), so shared and unshared synthesis hit the same entries.
struct CostCache {
    entries: Mutex<HashMap<MulKey, MulEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

static COST_CACHE: OnceLock<CostCache> = OnceLock::new();

fn cost_cache() -> &'static CostCache {
    COST_CACHE.get_or_init(|| CostCache {
        entries: Mutex::new(HashMap::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Snapshot of the process-wide multiplier-cost cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostCacheStats {
    /// Multiplier cost requests answered from the cache.
    pub hits: u64,
    /// Multiplier cost requests that recoded and walked the multiplier.
    pub misses: u64,
    /// Number of distinct `(code, width, recoding)` entries cached.
    pub entries: usize,
}

impl CostCacheStats {
    /// Fraction of requests answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Returns the current process-wide multiplier-cache counters.
///
/// The cache is shared by every [`estimate_circuit`] call in the process (and
/// by [`multiplier_cost_cached`]), so concurrent engines all contribute to the
/// same counters.
pub fn multiplier_cache_stats() -> CostCacheStats {
    let cache = cost_cache();
    CostCacheStats {
        hits: cache.hits.load(Ordering::Relaxed),
        misses: cache.misses.load(Ordering::Relaxed),
        entries: cache.entries.lock().expect("cost cache lock").len(),
    }
}

/// Memoized variant of [`crate::constmul::multiplier_cost`]: identical result,
/// but repeated queries for the same `(code, input width, recoding)` are
/// answered from the process-wide `CostCache`.
pub fn multiplier_cost_cached(
    code: i64,
    input_bits: usize,
    recoding: RecodingStrategy,
) -> MultiplierCost {
    if code == 0 {
        // Mirror `constant_multiplier`: a zero constant is pruned wiring and
        // never touches the cache.
        return crate::constmul::multiplier_cost(0, recoding);
    }
    lookup_multiplier(code, input_bits, recoding).cost
}

fn recode_terms(code: i64, recoding: RecodingStrategy) -> Vec<(u32, i8)> {
    match recoding {
        RecodingStrategy::Csd => CsdDigits::from_value(code).terms(),
        RecodingStrategy::Binary => {
            let negative = code < 0;
            let magnitude = code.unsigned_abs();
            (0..64)
                .filter(|&i| (magnitude >> i) & 1 == 1)
                .map(|i| (i as u32, if negative { -1_i8 } else { 1_i8 }))
                .collect()
        }
    }
}

/// Fetches (or computes and inserts) the memo entry of one multiplier.
///
/// The whole lookup-or-fill runs under one lock acquisition so concurrent
/// engines never recompute the same cold entry and the hit/miss counters are
/// exact (the fill itself is a microsecond-scale arithmetic walk, so the
/// critical section stays negligible).
fn lookup_multiplier(code: i64, input_bits: usize, recoding: RecodingStrategy) -> MulEntry {
    let key = MulKey {
        code,
        input_bits: input_bits.min(u8::MAX as usize) as u8,
        recoding,
    };
    let cache = cost_cache();
    let mut entries = cache.entries.lock().expect("cost cache lock");
    if let Some(entry) = entries.get(&key) {
        cache.hits.fetch_add(1, Ordering::Relaxed);
        return entry.clone();
    }
    cache.misses.fetch_add(1, Ordering::Relaxed);

    let terms: Arc<[(u32, i8)]> = recode_terms(code, recoding).into();
    // Walk the multiplier once against a zero-arrival input of the right
    // width, purely to count its gates.
    let mut probe = Estimator::probe();
    let input = vec![0.0; input_bits];
    let before = probe.counts;
    let _ = probe.multiplier_from_terms(&input, &terms);
    let counts = probe.counts.diff(&before);
    let nonzero = terms.len();
    let entry = MulEntry {
        terms,
        counts,
        cost: MultiplierCost {
            adders: nonzero.saturating_sub(1),
            nonzero_digits: nonzero,
            is_free: nonzero <= 1,
        },
    };
    entries.insert(key, entry.clone());
    entry
}

/// The structural walker: mirrors the netlist builders gate for gate,
/// accumulating instance counts and per-bit arrival times instead of gates.
struct Estimator {
    delays: [f64; KIND_COUNT],
    counts: CellCounts,
    max_arrival: f64,
    /// When `false`, gates update arrival times but not the instance counts
    /// (used after a multiplier-cache hit, where the counts are bulk-added).
    counting: bool,
}

impl Estimator {
    fn new(library: &CellLibrary) -> Self {
        let mut delays = [0.0; KIND_COUNT];
        for kind in CellKind::all() {
            delays[kind as usize] = library.params(kind).delay_us;
        }
        Estimator {
            delays,
            counts: CellCounts::default(),
            max_arrival: 0.0,
            counting: true,
        }
    }

    /// A library-independent estimator used only to count gates (delays 0).
    fn probe() -> Self {
        Estimator {
            delays: [0.0; KIND_COUNT],
            counts: CellCounts::default(),
            max_arrival: 0.0,
            counting: true,
        }
    }

    /// Accounts for one gate and returns its output arrival time.
    #[inline]
    fn gate(&mut self, kind: CellKind, input_arrival: f64) -> f64 {
        if self.counting {
            self.counts.bump(kind);
        }
        let t = input_arrival + self.delays[kind as usize];
        if t > self.max_arrival {
            self.max_arrival = t;
        }
        t
    }

    /// Mirror of `adder::resize`: sign extension / truncation, pure wiring.
    fn resize(word: &[f64], width: usize) -> ArrWord {
        let sign = *word.last().expect("non-empty word");
        (0..width)
            .map(|i| if i < word.len() { word[i] } else { sign })
            .collect()
    }

    /// Mirror of `adder::add_with_carry` (via `adder::add` / `adder::sub`):
    /// `sub` inverts `b` and seeds the carry with the constant one.
    fn add_with_carry(&mut self, a: &[f64], b: &[f64], subtract: bool) -> ArrWord {
        let width = a.len().max(b.len()) + 1;
        let a_ext = Self::resize(a, width);
        let b_ext = Self::resize(b, width);
        let mut carry = 0.0_f64; // both constants arrive at t = 0
        let mut sum = Vec::with_capacity(width);
        for i in 0..width {
            let b_bit = if subtract {
                self.gate(CellKind::Inverter, b_ext[i])
            } else {
                b_ext[i]
            };
            // The netlist builder uses a half adder exactly when the carry-in
            // net is the constant zero: the first stage of a plain addition.
            let t = if i == 0 && !subtract {
                self.gate(CellKind::HalfAdder, a_ext[i].max(b_bit))
            } else {
                self.gate(CellKind::FullAdder, a_ext[i].max(b_bit).max(carry))
            };
            sum.push(t);
            carry = t;
        }
        sum
    }

    fn add(&mut self, a: &[f64], b: &[f64]) -> ArrWord {
        self.add_with_carry(a, b, false)
    }

    fn sub(&mut self, a: &[f64], b: &[f64]) -> ArrWord {
        self.add_with_carry(a, b, true)
    }

    /// Mirror of `adder::negate`: subtraction from a constant-zero word.
    fn negate(&mut self, a: &[f64]) -> ArrWord {
        let zero = vec![0.0; a.len()];
        self.sub(&zero, a)
    }

    /// Mirror of `adder::adder_tree`: balanced pairwise reduction.
    fn adder_tree(&mut self, operands: &[ArrWord]) -> ArrWord {
        match operands.len() {
            0 => vec![0.0],
            1 => operands[0].clone(),
            _ => {
                let mut level: Vec<ArrWord> = operands.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    for chunk in level.chunks(2) {
                        if chunk.len() == 2 {
                            next.push(self.add(&chunk[0], &chunk[1]));
                        } else {
                            next.push(chunk[0].clone());
                        }
                    }
                    level = next;
                }
                level.pop().expect("adder tree leaves a single word")
            }
        }
    }

    /// Mirror of `adder::relu`: sign inverter plus one AND mask per bit.
    fn relu(&mut self, a: &[f64]) -> ArrWord {
        let sign = *a.last().expect("non-empty word");
        let not_sign = self.gate(CellKind::Inverter, sign);
        a.iter()
            .map(|&bit| self.gate(CellKind::And2, bit.max(not_sign)))
            .collect()
    }

    /// Mirror of `adder::greater_than`: the sign of `b - a`.
    fn greater_than(&mut self, a: &[f64], b: &[f64]) -> f64 {
        let diff = self.sub(b, a);
        *diff.last().expect("difference word is non-empty")
    }

    /// Mirror of `adder::mux_word`: one 2:1 mux per bit of the wider word.
    fn mux_word(&mut self, sel: f64, on_false: &[f64], on_true: &[f64]) -> ArrWord {
        let width = on_false.len().max(on_true.len());
        let f = Self::resize(on_false, width);
        let t = Self::resize(on_true, width);
        (0..width)
            .map(|i| self.gate(CellKind::Mux2, sel.max(f[i]).max(t[i])))
            .collect()
    }

    /// Mirror of `constmul::constant_multiplier`, with the recoded terms (and
    /// gate counts) served from the process-wide [`CostCache`].
    fn constant_multiplier(
        &mut self,
        input: &[f64],
        constant: i64,
        recoding: RecodingStrategy,
    ) -> ArrWord {
        if constant == 0 {
            return vec![0.0];
        }
        let entry = lookup_multiplier(constant, input.len(), recoding);
        // The entry's counts already cover this multiplier: bulk-add them and
        // walk only for arrival times.
        let was_counting = self.counting;
        if was_counting {
            self.counts.add(&entry.counts);
            self.counting = false;
        }
        let out = self.multiplier_from_terms(input, &entry.terms);
        self.counting = was_counting;
        out
    }

    /// The shift-add/sub walk shared by the cache fill and the arrival pass.
    fn multiplier_from_terms(&mut self, input: &[f64], terms: &[(u32, i8)]) -> ArrWord {
        let shift = |word: &[f64], k: usize| -> ArrWord {
            let mut out = vec![0.0; k];
            out.extend_from_slice(word);
            out
        };
        let positive: Vec<ArrWord> = terms
            .iter()
            .filter(|&&(_, sign)| sign > 0)
            .map(|&(k, _)| shift(input, k as usize))
            .collect();
        let negative: Vec<ArrWord> = terms
            .iter()
            .filter(|&&(_, sign)| sign < 0)
            .map(|&(k, _)| shift(input, k as usize))
            .collect();
        let pos_sum = self.adder_tree(&positive);
        let neg_sum = self.adder_tree(&negative);
        match (positive.is_empty(), negative.is_empty()) {
            (true, true) => vec![0.0],
            (false, true) => pos_sum,
            (true, false) => self.negate(&neg_sum),
            (false, false) => self.sub(&pos_sum, &neg_sum),
        }
    }

    /// Mirror of `neuron::build_neuron`.
    fn neuron(
        &mut self,
        inputs: &[ArrWord],
        weights: &[i64],
        bias: i64,
        relu: bool,
        cache: Option<&mut HashMap<(usize, i64), ArrWord>>,
        recoding: RecodingStrategy,
    ) -> ArrWord {
        let mut operands: Vec<ArrWord> = Vec::new();
        match cache {
            Some(cache) => {
                for (i, (&w, input)) in weights.iter().zip(inputs.iter()).enumerate() {
                    if w == 0 {
                        continue;
                    }
                    if let Some(product) = cache.get(&(i, w)) {
                        operands.push(product.clone());
                    } else {
                        let built = self.constant_multiplier(input, w, recoding);
                        cache.insert((i, w), built.clone());
                        operands.push(built);
                    }
                }
            }
            None => {
                for (&w, input) in weights.iter().zip(inputs.iter()) {
                    if w == 0 {
                        continue;
                    }
                    operands.push(self.constant_multiplier(input, w, recoding));
                }
            }
        }
        if bias != 0 {
            operands.push(vec![0.0; min_signed_width(bias)]);
        }
        let sum = self.adder_tree(&operands);
        if relu {
            self.relu(&sum)
        } else {
            sum
        }
    }

    /// Mirror of `circuit::build_argmax`.
    fn argmax(&mut self, outputs: &[ArrWord]) -> ArrWord {
        let n = outputs.len();
        let index_bits = (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize;
        let mut best_value = outputs[0].clone();
        let mut best_index: ArrWord = vec![0.0; index_bits + 1];
        for candidate in outputs.iter().skip(1) {
            let is_greater = self.greater_than(candidate, &best_value);
            best_value = self.mux_word(is_greater, &best_value, candidate);
            let candidate_index = vec![0.0; index_bits + 1];
            best_index = self.mux_word(is_greater, &best_index, &candidate_index);
        }
        best_index
    }
}

/// Estimates area, power and timing of the bespoke circuit for `spec` without
/// building its netlist.
///
/// The result is identical (including float bit patterns) to synthesizing the
/// circuit with [`BespokeMlpCircuit::synthesize_with`](crate::BespokeMlpCircuit::synthesize_with)
/// and running the three netlist analyses — the equivalence test suite in this
/// module and in `pmlp-core` asserts exact equality.
///
/// # Errors
///
/// Returns the same validation errors full synthesis would:
/// [`HwError::InvalidSpec`] / [`HwError::InvalidBitWidth`] for inconsistent
/// specs and an argmax activation on a non-output layer.
pub fn estimate_circuit(
    spec: &CircuitSpec,
    library: &CellLibrary,
    sharing: SharingStrategy,
    recoding: RecodingStrategy,
) -> Result<CostReport, HwError> {
    // Same re-validation as full synthesis, so hand-constructed specs cannot
    // bypass the checks.
    spec.validate()?;
    let mut est = Estimator::new(library);

    let width = spec.input_bits as usize + 1;
    let mut current: Vec<ArrWord> = (0..spec.input_count()).map(|_| vec![0.0; width]).collect();

    let layer_count = spec.layers.len();
    for (li, layer) in spec.layers.iter().enumerate() {
        let mut cache: HashMap<(usize, i64), ArrWord> = HashMap::new();
        let mut outputs: Vec<ArrWord> = Vec::with_capacity(layer.neuron_count());
        for (ni, row) in layer.weights.iter().enumerate() {
            let cache_ref = match sharing {
                SharingStrategy::SharedPerInput => Some(&mut cache),
                SharingStrategy::None => None,
            };
            let out = est.neuron(
                &current,
                row,
                layer.biases[ni],
                layer.activation == HwActivation::ReLU,
                cache_ref,
                recoding,
            );
            outputs.push(out);
        }
        if layer.activation == HwActivation::Argmax {
            if li != layer_count - 1 {
                return Err(HwError::InvalidSpec {
                    context: format!("argmax activation on non-output layer {li}"),
                });
            }
            let _ = est.argmax(&outputs);
        }
        current = outputs;
    }

    let gate_count = est.counts.total();
    let (area_by_kind, total_mm2) = est.counts.report_map(|k| library.params(k).area_mm2);
    let (power_by_kind, total_uw) = est.counts.report_map(|k| library.params(k).power_uw);
    let critical = est.max_arrival;
    Ok(CostReport {
        area: AreaReport {
            total_mm2,
            gate_count,
            by_kind: area_by_kind,
        },
        power: PowerReport {
            total_uw,
            by_kind: power_by_kind,
        },
        timing: TimingReport {
            critical_path_us: critical,
            max_frequency_hz: if critical > 0.0 {
                1e6 / critical
            } else {
                f64::INFINITY
            },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{BespokeMlpCircuit, LayerSpec};

    fn assert_equivalent(spec: &CircuitSpec, sharing: SharingStrategy, recoding: RecodingStrategy) {
        let library = CellLibrary::egt();
        let fast = estimate_circuit(spec, &library, sharing, recoding).expect("fast path");
        let full =
            BespokeMlpCircuit::synthesize_with(spec, &library, sharing, recoding).expect("full");
        assert_eq!(fast.area, full.area(), "area mismatch ({sharing:?})");
        assert_eq!(fast.power, full.power(), "power mismatch ({sharing:?})");
        assert_eq!(fast.timing, full.timing(), "timing mismatch ({sharing:?})");
        assert_eq!(fast.gate_count(), full.netlist().gate_count());
        assert_eq!(
            fast.energy_pj(),
            full.report().energy_pj(),
            "energy mismatch ({sharing:?})"
        );
    }

    fn simple_spec() -> CircuitSpec {
        CircuitSpec::new(
            4,
            vec![
                LayerSpec::with_biases(
                    vec![vec![2, -1, 3], vec![-2, 4, 1]],
                    vec![3, -5],
                    4,
                    HwActivation::ReLU,
                )
                .unwrap(),
                LayerSpec::new(vec![vec![1, -2], vec![-3, 2]], 4, HwActivation::Argmax).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_full_synthesis_on_the_simple_spec() {
        for sharing in [SharingStrategy::None, SharingStrategy::SharedPerInput] {
            for recoding in [RecodingStrategy::Csd, RecodingStrategy::Binary] {
                assert_equivalent(&simple_spec(), sharing, recoding);
            }
        }
    }

    #[test]
    fn matches_full_synthesis_with_clustered_weights() {
        // Fully clustered weights exercise the product-sharing path.
        let layer = LayerSpec::new(vec![vec![5, -3, 7]; 6], 4, HwActivation::Identity).unwrap();
        let spec = CircuitSpec::new(4, vec![layer]).unwrap();
        assert_equivalent(
            &spec,
            SharingStrategy::SharedPerInput,
            RecodingStrategy::Csd,
        );
        assert_equivalent(&spec, SharingStrategy::None, RecodingStrategy::Csd);
    }

    #[test]
    fn matches_full_synthesis_on_degenerate_specs() {
        // All-zero weights: no gates at all.
        let zero = CircuitSpec::new(
            3,
            vec![LayerSpec::new(vec![vec![0, 0]], 4, HwActivation::Identity).unwrap()],
        )
        .unwrap();
        assert_equivalent(&zero, SharingStrategy::None, RecodingStrategy::Csd);
        // Single argmax output (no comparator tree is built for n = 1).
        let single = CircuitSpec::new(
            3,
            vec![LayerSpec::new(vec![vec![3, -1]], 4, HwActivation::Argmax).unwrap()],
        )
        .unwrap();
        assert_equivalent(&single, SharingStrategy::None, RecodingStrategy::Csd);
        // Power-of-two and negated power-of-two weights (pure wiring / negate).
        let pow2 = CircuitSpec::new(
            4,
            vec![LayerSpec::new(vec![vec![4, -8, 1, -1]], 5, HwActivation::ReLU).unwrap()],
        )
        .unwrap();
        assert_equivalent(&pow2, SharingStrategy::None, RecodingStrategy::Csd);
    }

    #[test]
    fn rejects_the_same_specs_as_full_synthesis() {
        let l1 = LayerSpec::new(vec![vec![1, 2], vec![2, 1]], 4, HwActivation::Argmax).unwrap();
        let l2 = LayerSpec::new(vec![vec![1, 1]], 4, HwActivation::Identity).unwrap();
        let spec = CircuitSpec::new(4, vec![l1, l2]).unwrap();
        let library = CellLibrary::egt();
        assert!(estimate_circuit(
            &spec,
            &library,
            SharingStrategy::None,
            RecodingStrategy::Csd
        )
        .is_err());
        assert!(BespokeMlpCircuit::synthesize(&spec, &library).is_err());
    }

    #[test]
    fn multiplier_cost_cached_matches_uncached() {
        for code in -40_i64..=40 {
            for recoding in [RecodingStrategy::Csd, RecodingStrategy::Binary] {
                assert_eq!(
                    multiplier_cost_cached(code, 6, recoding),
                    crate::constmul::multiplier_cost(code, recoding),
                    "code {code} ({recoding:?})"
                );
            }
        }
    }

    #[test]
    fn cache_reports_hits_after_reuse() {
        let before = multiplier_cache_stats();
        // A fresh, unusual key guarantees one miss followed by hits.
        let code = 0x5A5A;
        let _ = multiplier_cost_cached(code, 9, RecodingStrategy::Csd);
        let _ = multiplier_cost_cached(code, 9, RecodingStrategy::Csd);
        let _ = multiplier_cost_cached(code, 9, RecodingStrategy::Csd);
        let after = multiplier_cache_stats();
        assert!(after.misses > before.misses);
        assert!(after.hits >= before.hits + 2);
        assert!(after.entries > 0);
        assert!(after.hit_rate() > 0.0);
    }

    #[test]
    fn estimate_is_much_lighter_than_synthesis_for_big_specs() {
        // Not a timing assertion (CI noise), just a sanity check that the
        // fast path scales to a realistically-sized spec and agrees.
        let weight = |i: usize, j: usize| -> i64 { ((i * 31 + j * 17 + 7) % 31) as i64 - 15 };
        let hidden: Vec<Vec<i64>> = (0..20)
            .map(|n| (0..11).map(|i| weight(n, i)).collect())
            .collect();
        let output: Vec<Vec<i64>> = (0..5)
            .map(|n| (0..20).map(|i| weight(n + 100, i)).collect())
            .collect();
        let spec = CircuitSpec::new(
            4,
            vec![
                LayerSpec::new(hidden, 5, HwActivation::ReLU).unwrap(),
                LayerSpec::new(output, 5, HwActivation::Argmax).unwrap(),
            ],
        )
        .unwrap();
        assert_equivalent(&spec, SharingStrategy::None, RecodingStrategy::Csd);
        assert_equivalent(
            &spec,
            SharingStrategy::SharedPerInput,
            RecodingStrategy::Csd,
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::circuit::{BespokeMlpCircuit, LayerSpec};
    use proptest::prelude::*;

    /// Random layer stacks covering bit-widths 2–8, biases, ReLU/identity
    /// hidden activations and an argmax output.
    fn arbitrary_spec() -> impl Strategy<Value = CircuitSpec> {
        (
            (2_u8..=8, 2_usize..=4),    // (weight bits, inputs)
            (1_usize..=4, 2_usize..=3), // (hidden neurons, outputs)
            0_u64..u64::MAX,            // weight seed
            0_u8..2,                    // hidden relu?
        )
            .prop_map(|((bits, inputs), (hidden, outputs), seed, relu)| {
                let relu = relu == 1;
                let lo = -(1_i64 << (bits - 1));
                let hi = (1_i64 << (bits - 1)) - 1;
                let mut state = seed | 1;
                let mut next = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let span = (hi - lo + 1) as u64;
                    lo + ((state >> 33) % span) as i64
                };
                let h: Vec<Vec<i64>> = (0..hidden)
                    .map(|_| (0..inputs).map(|_| next()).collect())
                    .collect();
                let hb: Vec<i64> = (0..hidden).map(|_| next()).collect();
                let o: Vec<Vec<i64>> = (0..outputs)
                    .map(|_| (0..hidden).map(|_| next()).collect())
                    .collect();
                let activation = if relu {
                    HwActivation::ReLU
                } else {
                    HwActivation::Identity
                };
                CircuitSpec::new(
                    4,
                    vec![
                        LayerSpec::with_biases(h, hb, bits, activation).unwrap(),
                        LayerSpec::new(o, bits, HwActivation::Argmax).unwrap(),
                    ],
                )
                .unwrap()
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn fast_path_matches_full_synthesis(spec in arbitrary_spec()) {
            let library = CellLibrary::egt();
            for sharing in [SharingStrategy::None, SharingStrategy::SharedPerInput] {
                let fast =
                    estimate_circuit(&spec, &library, sharing, RecodingStrategy::Csd).unwrap();
                let full = BespokeMlpCircuit::synthesize_with(
                    &spec,
                    &library,
                    sharing,
                    RecodingStrategy::Csd,
                )
                .unwrap();
                prop_assert_eq!(&fast.area, &full.area());
                prop_assert_eq!(&fast.power, &full.power());
                prop_assert_eq!(&fast.timing, &full.timing());
            }
        }
    }
}
