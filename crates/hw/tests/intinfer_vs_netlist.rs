//! Differential equivalence battery: [`IntInferEngine`] vs gate-level
//! netlist simulation.
//!
//! For randomized topologies, bit-widths (2–8 bits), recodings, and sharing
//! configurations, the integer engine's raw outputs and argmax class must be
//! bit-identical to synthesizing the same [`CircuitSpec`] with
//! [`BespokeMlpCircuit`] and simulating the netlist gate by gate. The
//! named `pinned_*` tests below freeze the corner cases the property suite's
//! seeds exercise (argmax ties, all-zero rows, negative ReLU sums,
//! single-neuron layers) so they survive any future change to the random
//! generator.

use pmlp_hw::constmul::RecodingStrategy;
use pmlp_hw::{
    BespokeMlpCircuit, CellLibrary, CircuitSpec, HwActivation, IntInferEngine, LayerSpec,
    SharingStrategy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a valid random spec: 1–4 inputs, 1–3 layers of 1–3 neurons,
/// weights in the signed `weight_bits` range with a 25% zero (pruned)
/// probability, biases on the product grid, argmax or identity output head.
fn random_spec(seed: u64, input_bits: u8, weight_bits: u8) -> CircuitSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_code = (1_i64 << (weight_bits - 1)) - 1;
    let inputs = rng.gen_range(1..5_usize);
    let depth = rng.gen_range(1..4_usize);
    let mut layers = Vec::with_capacity(depth);
    let mut fan_in = inputs;
    for li in 0..depth {
        let neurons = rng.gen_range(1..4_usize);
        let weights: Vec<Vec<i64>> = (0..neurons)
            .map(|_| {
                (0..fan_in)
                    .map(|_| {
                        if rng.gen_bool(0.25) {
                            0
                        } else {
                            rng.gen_range(-max_code..=max_code)
                        }
                    })
                    .collect()
            })
            .collect();
        let biases: Vec<i64> = (0..neurons)
            .map(|_| rng.gen_range(-4 * max_code..=4 * max_code))
            .collect();
        let activation = if li + 1 < depth {
            HwActivation::ReLU
        } else if rng.gen_bool(0.75) {
            HwActivation::Argmax
        } else {
            HwActivation::Identity
        };
        layers.push(LayerSpec::with_biases(weights, biases, weight_bits, activation).unwrap());
        fan_in = neurons;
    }
    CircuitSpec::new(input_bits, layers).unwrap()
}

fn random_rows(seed: u64, input_count: usize, input_bits: u8, n: usize) -> Vec<Vec<u16>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let limit = 1_u32 << input_bits;
    (0..n)
        .map(|_| {
            (0..input_count)
                .map(|_| rng.gen_range(0..limit) as u16)
                .collect()
        })
        .collect()
}

/// Asserts engine ≡ netlist for every sharing × recoding combination on the
/// given rows.
fn assert_equivalent(spec: &CircuitSpec, rows: &[Vec<u16>]) {
    let lib = CellLibrary::egt();
    for sharing in [SharingStrategy::None, SharingStrategy::SharedPerInput] {
        let engine = IntInferEngine::from_spec_with(spec, sharing).unwrap();
        for recoding in [RecodingStrategy::Csd, RecodingStrategy::Binary] {
            let circuit = BespokeMlpCircuit::synthesize_with(spec, &lib, sharing, recoding)
                .expect("synthesis of a validated spec");
            for row in rows {
                let wide: Vec<u64> = row.iter().map(|&v| v as u64).collect();
                assert_eq!(
                    engine.outputs(row),
                    circuit.evaluate(&wide),
                    "raw outputs diverged: sharing {sharing:?} recoding {recoding:?} row {row:?}"
                );
                assert_eq!(
                    engine.classify_row(row),
                    circuit.classify(&wide),
                    "argmax diverged: sharing {sharing:?} recoding {recoding:?} row {row:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn intinfer_vs_netlist(
        seed in 0_u64..u64::MAX,
        input_bits in 2_u8..9,
        weight_bits in 2_u8..9,
    ) {
        let spec = random_spec(seed, input_bits, weight_bits);
        let rows = random_rows(seed, spec.input_count(), input_bits, 4);
        assert_equivalent(&spec, &rows);
    }
}

/// Every class output ties: the comparator tree and the engine must both
/// resolve to the lowest index for every input vector.
#[test]
fn pinned_argmax_ties_resolve_to_lowest_index() {
    let spec = CircuitSpec::new(
        3,
        vec![LayerSpec::with_biases(
            vec![vec![2, -3], vec![2, -3], vec![2, -3]],
            vec![1, 1, 1],
            4,
            HwActivation::Argmax,
        )
        .unwrap()],
    )
    .unwrap();
    let rows: Vec<Vec<u16>> = (0..8)
        .flat_map(|a| (0..8).map(move |b| vec![a, b]))
        .collect();
    assert_equivalent(&spec, &rows);
    let engine = IntInferEngine::from_spec(&spec).unwrap();
    for row in &rows {
        assert_eq!(engine.classify_row(row), 0);
    }
}

/// Fully pruned neurons (all weights zero) score biases alone — including a
/// neuron whose bias is negative under ReLU.
#[test]
fn pinned_all_zero_weights_and_negative_relu() {
    let spec = CircuitSpec::new(
        4,
        vec![
            LayerSpec::with_biases(
                vec![vec![0, 0, 0], vec![0, -7, 0]],
                vec![-11, 3],
                4,
                HwActivation::ReLU,
            )
            .unwrap(),
            LayerSpec::with_biases(
                vec![vec![1, -1], vec![-1, 1]],
                vec![0, 0],
                4,
                HwActivation::Argmax,
            )
            .unwrap(),
        ],
    )
    .unwrap();
    let rows = random_rows(7, 3, 4, 8);
    assert_equivalent(&spec, &rows);
    // The first hidden neuron is always ReLU-clamped to zero.
    let engine = IntInferEngine::from_spec(&spec).unwrap();
    assert_eq!(engine.outputs(&[15, 0, 15]), vec![-3, 3]);
}

/// Degenerate single-neuron layers, including a single-class argmax head
/// (the comparator tree collapses to a constant zero index).
#[test]
fn pinned_single_neuron_layers() {
    let spec = CircuitSpec::new(
        2,
        vec![
            LayerSpec::with_biases(vec![vec![3]], vec![-2], 3, HwActivation::ReLU).unwrap(),
            LayerSpec::with_biases(vec![vec![-3]], vec![5], 3, HwActivation::Argmax).unwrap(),
        ],
    )
    .unwrap();
    let rows: Vec<Vec<u16>> = (0..4).map(|v| vec![v]).collect();
    assert_equivalent(&spec, &rows);
    let engine = IntInferEngine::from_spec(&spec).unwrap();
    for row in &rows {
        assert_eq!(engine.classify_row(row), 0);
    }
}

/// Maximum-magnitude 8-bit weights at 8-bit inputs across both kernels'
/// boundary conditions (the i32 kernel still applies; the bound math must
/// keep it safe).
#[test]
fn pinned_extreme_codes_at_8_bits() {
    let max = (1_i64 << 7) - 1;
    let spec = CircuitSpec::new(
        8,
        vec![
            LayerSpec::with_biases(
                vec![vec![max, -max, max], vec![-max, max, -max]],
                vec![4 * max, -4 * max],
                8,
                HwActivation::ReLU,
            )
            .unwrap(),
            LayerSpec::with_biases(
                vec![vec![max, -max], vec![-max, max]],
                vec![0, 0],
                8,
                HwActivation::Argmax,
            )
            .unwrap(),
        ],
    )
    .unwrap();
    let rows = vec![vec![0_u16, 0, 0], vec![255, 255, 255], vec![255, 0, 255]];
    assert_equivalent(&spec, &rows);
}
