//! Figure 2 — WhiteWine: combined minimization via the hardware-aware GA
//! compared against the standalone techniques. The bench regenerates the
//! figure data (quick effort), then measures the cost of one GA generation on
//! the Seeds baseline (the smallest dataset, to keep the measured unit
//! tight), cold versus warm: the warm run is answered entirely from the
//! engine's memo cache and quantifies what the shared evaluation engine buys.

use criterion::{criterion_group, criterion_main, Criterion};
use pmlp_bench::render_figure2;
use pmlp_core::engine::EvalEngine;
use pmlp_core::experiment::{Effort, Figure2Experiment};
use pmlp_core::genome::GenomeSpace;
use pmlp_core::{Nsga2, Nsga2Config};
use pmlp_data::UciDataset;
use std::time::Duration;

fn bench_fig2_combined(c: &mut Criterion) {
    let result = Figure2Experiment::new(UciDataset::WhiteWine, Effort::Quick, 42)
        .run()
        .expect("figure 2 regeneration");
    println!("{}", render_figure2(&result));

    let engine = EvalEngine::train_with(UciDataset::Seeds, 42, &Effort::Quick.baseline_config())
        .expect("baseline")
        .with_fine_tune_epochs(1);
    let config = Nsga2Config {
        population: 4,
        generations: 1,
        space: GenomeSpace {
            weight_bits: vec![3, 4],
            sparsities: vec![0.4],
            cluster_counts: vec![3],
            enable_probability: 0.8,
        },
        ..Nsga2Config::default()
    };

    let mut group = c.benchmark_group("fig2_combined");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("ga_single_generation_seeds", |b| {
        b.iter(|| {
            engine.clear_cache();
            Nsga2::new(config.clone()).run(&engine).unwrap()
        })
    });
    group.bench_function("ga_single_generation_seeds_warm_cache", |b| {
        // Prime the cache once; every iteration is then pure search overhead.
        Nsga2::new(config.clone()).run(&engine).unwrap();
        b.iter(|| Nsga2::new(config.clone()).run(&engine).unwrap())
    });
    group.finish();
    println!("engine stats after bench: {:?}", engine.stats());
}

criterion_group!(benches, bench_fig2_combined);
criterion_main!(benches);
