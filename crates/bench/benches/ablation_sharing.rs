//! Ablation A1 (DESIGN.md): how much of the weight-clustering area gain comes
//! from multiplier sharing in the bespoke circuit, as opposed to the weight
//! values themselves becoming more regular.
//!
//! The bench prints the shared-vs-unshared area of a clustered Seeds
//! classifier, then measures the synthesis cost of both variants.

use criterion::{criterion_group, criterion_main, Criterion};
use pmlp_core::baseline::BaselineDesign;
use pmlp_core::bridge::circuit_spec_from_layers;
use pmlp_core::experiment::Effort;
use pmlp_hw::constmul::RecodingStrategy;
use pmlp_hw::{BespokeMlpCircuit, CellLibrary, SharingStrategy};
use pmlp_minimize::{minimize, MinimizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_ablation_sharing(c: &mut Criterion) {
    let baseline = BaselineDesign::train_with(
        pmlp_data::UciDataset::Seeds,
        42,
        &Effort::Quick.baseline_config(),
    )
    .expect("baseline");
    let mut rng = StdRng::seed_from_u64(5);
    let clustered = minimize(
        &baseline.model,
        &baseline.train,
        None,
        &MinimizationConfig::default()
            .with_clusters(3)
            .with_fine_tune_epochs(2),
        &mut rng,
    )
    .expect("clustered model");
    let spec = circuit_spec_from_layers(&clustered.integer_layers, 4).expect("spec");
    let library = CellLibrary::egt();

    let unshared = BespokeMlpCircuit::synthesize_with(
        &spec,
        &library,
        SharingStrategy::None,
        RecodingStrategy::Csd,
    )
    .expect("unshared synthesis");
    let shared = BespokeMlpCircuit::synthesize_with(
        &spec,
        &library,
        SharingStrategy::SharedPerInput,
        RecodingStrategy::Csd,
    )
    .expect("shared synthesis");
    println!("=== ablation A1: multiplier sharing on a 3-cluster Seeds classifier ===");
    println!(
        "without sharing: {:.2} mm2 ({} gates)",
        unshared.area().total_mm2,
        unshared.area().gate_count
    );
    println!(
        "with sharing:    {:.2} mm2 ({} gates)",
        shared.area().total_mm2,
        shared.area().gate_count
    );
    println!(
        "sharing saves {:.1}% of the clustered circuit's area",
        100.0 * (1.0 - shared.area().total_mm2 / unshared.area().total_mm2)
    );

    let mut group = c.benchmark_group("ablation_sharing");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("synthesize_without_sharing", |b| {
        b.iter(|| {
            BespokeMlpCircuit::synthesize_with(
                &spec,
                &library,
                SharingStrategy::None,
                RecodingStrategy::Csd,
            )
            .unwrap()
            .area()
            .total_mm2
        })
    });
    group.bench_function("synthesize_with_sharing", |b| {
        b.iter(|| {
            BespokeMlpCircuit::synthesize_with(
                &spec,
                &library,
                SharingStrategy::SharedPerInput,
                RecodingStrategy::Csd,
            )
            .unwrap()
            .area()
            .total_mm2
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation_sharing);
criterion_main!(benches);
