//! Figure 1(a) — WhiteWine: standalone quantization / pruning / clustering
//! Pareto fronts, normalized to the bespoke baseline.
//!
//! Running this bench first regenerates and prints the figure data (quick
//! effort), then measures the cost of one hardware-aware candidate
//! evaluation on the WhiteWine baseline through the shared evaluation engine.

use criterion::{criterion_group, criterion_main, Criterion};
use pmlp_bench::render_figure1;
use pmlp_core::engine::Evaluator;
use pmlp_core::experiment::{Effort, Figure1Experiment};
use pmlp_data::UciDataset;
use pmlp_minimize::MinimizationConfig;
use std::time::Duration;

fn bench_fig1_whitewine(c: &mut Criterion) {
    let experiment = Figure1Experiment::new(UciDataset::WhiteWine, Effort::Quick, 42);
    let engine = experiment.build_engine().expect("baseline training");
    let result = experiment
        .run_with(&engine)
        .expect("figure 1 (WhiteWine) regeneration");
    println!("{}", render_figure1(&result));

    let candidate = MinimizationConfig::default().with_weight_bits(4);

    let mut group = c.benchmark_group("fig1_whitewine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("evaluate_quant4_candidate", |b| {
        b.iter(|| {
            engine.clear_cache();
            engine.evaluate(&candidate).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1_whitewine);
criterion_main!(benches);
