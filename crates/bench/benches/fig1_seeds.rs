//! Figure 1(d) — Seeds: standalone technique Pareto fronts plus the cost of a
//! clustering-candidate evaluation (the technique whose circuit uses
//! multiplier sharing), measured through the shared evaluation engine both
//! cold (full minimize-and-synthesize pipeline) and warm (memo-cache hit).

use criterion::{criterion_group, criterion_main, Criterion};
use pmlp_bench::render_figure1;
use pmlp_core::engine::Evaluator;
use pmlp_core::experiment::{Effort, Figure1Experiment};
use pmlp_data::UciDataset;
use pmlp_minimize::MinimizationConfig;
use std::time::Duration;

fn bench_fig1_seeds(c: &mut Criterion) {
    let experiment = Figure1Experiment::new(UciDataset::Seeds, Effort::Quick, 42);
    let engine = experiment.build_engine().expect("baseline training");
    let result = experiment
        .run_with(&engine)
        .expect("figure 1 (Seeds) regeneration");
    println!("{}", render_figure1(&result));

    let candidate = MinimizationConfig::default().with_clusters(3);

    let mut group = c.benchmark_group("fig1_seeds");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("evaluate_cluster3_candidate", |b| {
        b.iter(|| {
            engine.clear_cache();
            engine.evaluate(&candidate).unwrap()
        })
    });
    group.bench_function("evaluate_cluster3_cached", |b| {
        engine.evaluate(&candidate).unwrap();
        b.iter(|| engine.evaluate(&candidate).unwrap())
    });
    group.finish();
    println!("engine stats after bench: {:?}", engine.stats());
}

criterion_group!(benches, bench_fig1_seeds);
criterion_main!(benches);
