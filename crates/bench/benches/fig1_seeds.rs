//! Figure 1(d) — Seeds: standalone technique Pareto fronts plus the cost of a
//! clustering-candidate evaluation (the technique whose circuit uses
//! multiplier sharing).

use criterion::{criterion_group, criterion_main, Criterion};
use pmlp_bench::render_figure1;
use pmlp_core::baseline::BaselineDesign;
use pmlp_core::experiment::{Effort, Figure1Experiment};
use pmlp_core::objective::{evaluate_config, EvaluationContext};
use pmlp_data::UciDataset;
use pmlp_minimize::MinimizationConfig;
use std::time::Duration;

fn bench_fig1_seeds(c: &mut Criterion) {
    let result = Figure1Experiment::new(UciDataset::Seeds, Effort::Quick, 42)
        .run()
        .expect("figure 1 (Seeds) regeneration");
    println!("{}", render_figure1(&result));

    let baseline =
        BaselineDesign::train_with(UciDataset::Seeds, 42, &Effort::Quick.baseline_config())
            .expect("baseline");
    let ctx = EvaluationContext::new(&baseline).with_fine_tune_epochs(1);

    let mut group = c.benchmark_group("fig1_seeds");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(5));
    group.bench_function("evaluate_cluster3_candidate", |b| {
        b.iter(|| evaluate_config(&ctx, &MinimizationConfig::default().with_clusters(3), 0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig1_seeds);
criterion_main!(benches);
