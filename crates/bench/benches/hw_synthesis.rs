//! Micro-benchmarks of the bespoke hardware model: CSD recoding, constant
//! multiplier generation, neuron synthesis and full-circuit synthesis +
//! analysis.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmlp_hw::adder::input_word;
use pmlp_hw::constmul::{constant_multiplier, RecodingStrategy};
use pmlp_hw::neuron::{NeuronCircuit, NeuronSpec};
use pmlp_hw::{
    BespokeMlpCircuit, CellLibrary, CircuitSpec, CsdDigits, HwActivation, LayerSpec, Netlist,
};
use std::time::Duration;

/// A WhiteWine-shaped spec (11 inputs, 25 hidden, 5 outputs) with
/// deterministic pseudo-random 5-bit weights.
fn whitewine_like_spec() -> CircuitSpec {
    let weight = |i: usize, j: usize| -> i64 { ((i * 31 + j * 17 + 7) % 31) as i64 - 15 };
    let hidden: Vec<Vec<i64>> = (0..25)
        .map(|n| (0..11).map(|i| weight(n, i)).collect())
        .collect();
    let output: Vec<Vec<i64>> = (0..5)
        .map(|n| (0..25).map(|i| weight(n + 100, i)).collect())
        .collect();
    CircuitSpec::new(
        4,
        vec![
            LayerSpec::new(hidden, 5, HwActivation::ReLU).expect("hidden layer"),
            LayerSpec::new(output, 5, HwActivation::Argmax).expect("output layer"),
        ],
    )
    .expect("spec")
}

fn bench_hw_synthesis(c: &mut Criterion) {
    let library = CellLibrary::egt();
    let spec = whitewine_like_spec();

    let mut group = c.benchmark_group("hw_synthesis");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    group.bench_function("csd_recoding_8bit_range", |b| {
        b.iter(|| {
            for v in -127_i64..=127 {
                black_box(CsdDigits::from_value(v).nonzero_count());
            }
        })
    });

    group.bench_function("constant_multiplier_6bit_input", |b| {
        b.iter(|| {
            let mut netlist = Netlist::new("mul");
            let x = input_word(&mut netlist, 6);
            for constant in [3_i64, -7, 23, 55, -101] {
                black_box(constant_multiplier(
                    &mut netlist,
                    &x,
                    constant,
                    RecodingStrategy::Csd,
                ));
            }
            netlist.gate_count()
        })
    });

    group.bench_function("neuron_with_11_inputs", |b| {
        let spec = NeuronSpec::new(vec![5, -3, 7, 0, 2, -6, 1, 4, 0, -2, 3], true);
        b.iter(|| {
            NeuronCircuit::synthesize(&spec, 5)
                .unwrap()
                .netlist()
                .gate_count()
        })
    });

    group.bench_function("whitewine_circuit_synthesis", |b| {
        b.iter(|| {
            BespokeMlpCircuit::synthesize(&spec, &library)
                .unwrap()
                .area()
                .total_mm2
        })
    });

    group.bench_function("whitewine_circuit_timing_analysis", |b| {
        let circuit = BespokeMlpCircuit::synthesize(&spec, &library).unwrap();
        b.iter(|| circuit.timing().critical_path_us)
    });

    // The two-tier comparison: candidate evaluation cost through the analytic
    // fast path vs full synthesis + all three netlist analyses (what a search
    // loop would otherwise pay per candidate).
    group.bench_function("whitewine_full_synthesis_with_analyses", |b| {
        b.iter(|| {
            let circuit = BespokeMlpCircuit::synthesize(&spec, &library).unwrap();
            black_box((
                circuit.area().total_mm2,
                circuit.power().total_uw,
                circuit.timing().critical_path_us,
            ))
        })
    });

    group.bench_function("whitewine_fast_path_estimate", |b| {
        b.iter(|| {
            let report = pmlp_hw::cost::estimate_circuit(
                &spec,
                &library,
                pmlp_hw::SharingStrategy::None,
                RecodingStrategy::Csd,
            )
            .unwrap();
            black_box((
                report.area.total_mm2,
                report.power.total_uw,
                report.timing.critical_path_us,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_hw_synthesis);
criterion_main!(benches);
