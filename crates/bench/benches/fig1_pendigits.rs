//! Figure 1(c) — Pendigits: standalone technique Pareto fronts plus the cost
//! of synthesizing the (largest) Pendigits bespoke baseline circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use pmlp_bench::render_figure1;
use pmlp_core::baseline::BaselineDesign;
use pmlp_core::bridge::circuit_spec_from_layers;
use pmlp_core::experiment::{Effort, Figure1Experiment};
use pmlp_data::UciDataset;
use pmlp_hw::{BespokeMlpCircuit, CellLibrary};
use pmlp_minimize::{minimize, MinimizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_fig1_pendigits(c: &mut Criterion) {
    let result = Figure1Experiment::new(UciDataset::Pendigits, Effort::Quick, 42)
        .run()
        .expect("figure 1 (Pendigits) regeneration");
    println!("{}", render_figure1(&result));

    // Prepare the baseline integer layers once; benchmark only the synthesis.
    let baseline =
        BaselineDesign::train_with(UciDataset::Pendigits, 42, &Effort::Quick.baseline_config())
            .expect("baseline");
    let mut rng = StdRng::seed_from_u64(1);
    let minimized = minimize(
        &baseline.model,
        &baseline.train,
        None,
        &MinimizationConfig::baseline().with_fine_tune_epochs(1),
        &mut rng,
    )
    .expect("baseline quantization");
    let spec = circuit_spec_from_layers(&minimized.integer_layers, 4).expect("circuit spec");
    let library = CellLibrary::egt();

    let mut group = c.benchmark_group("fig1_pendigits");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("synthesize_baseline_circuit", |b| {
        b.iter(|| BespokeMlpCircuit::synthesize(&spec, &library).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig1_pendigits);
criterion_main!(benches);
