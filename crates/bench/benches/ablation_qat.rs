//! Ablation A2 (DESIGN.md): quantization-aware training versus plain
//! post-training quantization at low bit-widths — the reason the paper uses
//! the QKeras QAT flow rather than simply rounding trained weights.
//!
//! The bench prints the accuracy of both flows at 2–5 bits on the Seeds
//! classifier, then measures the cost of each flow at 3 bits.

use criterion::{criterion_group, criterion_main, Criterion};
use pmlp_core::baseline::BaselineDesign;
use pmlp_core::experiment::Effort;
use pmlp_data::UciDataset;
use pmlp_minimize::qat::{post_training_quantize, quantization_aware_train};
use pmlp_minimize::{QatConfig, QuantizationConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_ablation_qat(c: &mut Criterion) {
    let baseline =
        BaselineDesign::train_with(UciDataset::Seeds, 42, &Effort::Quick.baseline_config())
            .expect("baseline");

    println!("=== ablation A2: QAT vs post-training quantization (Seeds) ===");
    println!(
        "float baseline accuracy: {:.1}%",
        baseline.model.accuracy(&baseline.test) * 100.0
    );
    for bits in [2u8, 3, 4, 5] {
        let ptq = post_training_quantize(
            &baseline.model,
            &QuantizationConfig {
                weight_bits: bits,
                input_bits: 4,
            },
        )
        .expect("ptq");
        let mut rng = StdRng::seed_from_u64(7);
        let (qat, _) = quantization_aware_train(
            &baseline.model,
            &baseline.train,
            None,
            &QatConfig::new(bits, 5),
            &mut rng,
        )
        .expect("qat");
        println!(
            "{bits}-bit: PTQ accuracy {:.1}%, QAT accuracy {:.1}%",
            ptq.model.accuracy(&baseline.test) * 100.0,
            qat.model.accuracy(&baseline.test) * 100.0,
        );
    }

    let mut group = c.benchmark_group("ablation_qat");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("post_training_quantize_3bit", |b| {
        b.iter(|| {
            post_training_quantize(
                &baseline.model,
                &QuantizationConfig {
                    weight_bits: 3,
                    input_bits: 4,
                },
            )
            .unwrap()
            .code_sparsity()
        })
    });
    group.bench_function("qat_3bit_5_epochs", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            quantization_aware_train(
                &baseline.model,
                &baseline.train,
                None,
                &QatConfig::new(3, 5),
                &mut rng,
            )
            .unwrap()
            .0
            .code_sparsity()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation_qat);
criterion_main!(benches);
