//! Micro-benchmarks of the neural-network substrate: forward pass, one
//! training epoch and QAT fine-tuning on the Seeds classifier.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmlp_data::{load, UciDataset};
use pmlp_minimize::qat::quantization_aware_train;
use pmlp_minimize::QatConfig;
use pmlp_nn::{Activation, MlpBuilder, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_nn_training(c: &mut Criterion) {
    let data = load(UciDataset::Seeds, 42).expect("seeds dataset");
    let mut rng = StdRng::seed_from_u64(1);
    let mlp = MlpBuilder::new(data.feature_count())
        .hidden(10, Activation::ReLU)
        .output(data.class_count())
        .build(&mut rng)
        .expect("mlp");

    let mut group = c.benchmark_group("nn_training");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    group.bench_function("forward_pass_full_dataset", |b| {
        b.iter(|| black_box(mlp.forward(data.features()).unwrap()))
    });

    group.bench_function("train_one_epoch_seeds", |b| {
        b.iter(|| {
            let mut model = mlp.clone();
            let mut rng = StdRng::seed_from_u64(2);
            Trainer::new(TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            })
            .fit(&mut model, &data, None, &mut rng)
            .unwrap()
            .best_accuracy
        })
    });

    group.bench_function("qat_two_epochs_4bit", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            quantization_aware_train(&mlp, &data, None, &QatConfig::new(4, 2), &mut rng)
                .unwrap()
                .1
                .best_accuracy
        })
    });

    group.finish();
}

criterion_group!(benches, bench_nn_training);
criterion_main!(benches);
