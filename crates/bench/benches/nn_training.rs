//! Micro-benchmarks of the neural-network substrate: forward pass, one
//! training epoch and QAT fine-tuning on the Seeds classifier.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmlp_data::{load, UciDataset};
use pmlp_minimize::qat::quantization_aware_train;
use pmlp_minimize::QatConfig;
use pmlp_nn::{Activation, Matrix, MlpBuilder, MlpScratch, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_nn_training(c: &mut Criterion) {
    let data = load(UciDataset::Seeds, 42).expect("seeds dataset");
    let mut rng = StdRng::seed_from_u64(1);
    let mlp = MlpBuilder::new(data.feature_count())
        .hidden(10, Activation::ReLU)
        .output(data.class_count())
        .build(&mut rng)
        .expect("mlp");

    let mut group = c.benchmark_group("nn_training");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    group.bench_function("forward_pass_full_dataset", |b| {
        b.iter(|| black_box(mlp.forward(data.features()).unwrap()))
    });

    group.bench_function("train_one_epoch_seeds", |b| {
        b.iter(|| {
            let mut model = mlp.clone();
            let mut rng = StdRng::seed_from_u64(2);
            Trainer::new(TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            })
            .fit(&mut model, &data, None, &mut rng)
            .unwrap()
            .best_accuracy
        })
    });

    group.bench_function("qat_two_epochs_4bit", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            quantization_aware_train(&mlp, &data, None, &QatConfig::new(4, 2), &mut rng)
                .unwrap()
                .1
                .best_accuracy
        })
    });

    // Hot-kernel comparisons: the buffer-reusing `matmul_into` vs the
    // allocating `matmul`, and the scratch-backed backward (cached-transpose
    // buffers) vs the allocating one.
    let a = Matrix::from_vec(
        64,
        32,
        (0..64 * 32).map(|i| (i % 17) as f32 * 0.11).collect(),
    )
    .expect("a");
    let w = Matrix::from_vec(
        32,
        48,
        (0..32 * 48).map(|i| (i % 13) as f32 * 0.07).collect(),
    )
    .expect("w");
    group.bench_function("matmul_alloc_64x32x48", |b| {
        b.iter(|| black_box(a.matmul(&w).unwrap().as_slice()[0]))
    });
    group.bench_function("matmul_into_64x32x48", |b| {
        let mut out = Matrix::zeros(0, 0);
        b.iter(|| {
            a.matmul_into(&w, &mut out).unwrap();
            black_box(out.as_slice()[0])
        })
    });

    let batch = Matrix::from_vec(
        32,
        data.feature_count(),
        (0..32 * data.feature_count())
            .map(|i| (i % 19) as f32 * 0.05)
            .collect(),
    )
    .expect("batch");
    let (logits, caches) = mlp.forward_with_caches(&batch).expect("forward");
    let grad = Matrix::filled(logits.rows(), logits.cols(), 0.01);
    group.bench_function("backward_alloc_transposes", |b| {
        b.iter(|| black_box(mlp.backward(&caches, &grad).unwrap().len()))
    });
    group.bench_function("backward_cached_transposes", |b| {
        let mut scratch = MlpScratch::default();
        b.iter(|| {
            black_box(
                mlp.backward_with_scratch(&caches, grad.clone(), &mut scratch)
                    .unwrap()
                    .len(),
            )
        })
    });

    // The strided `column_iter` vs the `Vec`-allocating `column`.
    let features = data.features();
    group.bench_function("column_alloc_sum", |b| {
        b.iter(|| {
            let mut total = 0.0_f32;
            for c in 0..features.cols() {
                total += features.column(c).iter().sum::<f32>();
            }
            black_box(total)
        })
    });
    group.bench_function("column_iter_sum", |b| {
        b.iter(|| {
            let mut total = 0.0_f32;
            for c in 0..features.cols() {
                total += features.column_iter(c).sum::<f32>();
            }
            black_box(total)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_nn_training);
criterion_main!(benches);
