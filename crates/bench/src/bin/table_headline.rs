//! Regenerates the paper's Section III headline claims: the best area
//! reduction achievable with at most 5% accuracy loss, per technique and per
//! dataset, plus the cross-dataset averages quoted in the text
//! (≈5x quantization, ≈2.8x pruning, ≈3.5x clustering, up to ≈8x combined).
//!
//! The standalone-technique rows come from a full cross-dataset `Campaign`
//! (every registry dataset, fanned out over the worker pool); the combined
//! claim is the WhiteWine hardware-aware GA of Fig. 2.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmlp-bench --bin table_headline -- \
//!     [full|quick] [seed] [--quick] [--objectives LIST] [--store DIR] \
//!     [--remote-store URL] [--resume] [--require-warm]
//! ```
//!
//! `--quick` anywhere on the command line forces the reduced CI effort.
//! `--store DIR`/`--resume` persist and resume both the campaign (per-dataset
//! completion markers) and the WhiteWine GA (per-batch checkpoints);
//! `--remote-store URL` shares all of it through a `pmlp-serve` instance;
//! `--require-warm` fails the run if anything had to be evaluated fresh.

use pmlp_bench::{parse_cli, parse_effort, persist_json, render_headline};
use pmlp_core::campaign::{Campaign, CampaignConfig};
use pmlp_core::experiment::{headline_combined, Figure2Experiment};
use pmlp_core::report::{HeadlineRow, TechniqueSummary};
use pmlp_core::sweep::Technique;
use pmlp_data::UciDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_cli(&args);
    options.validate()?;
    let effort = options
        .effort
        .unwrap_or_else(|| parse_effort(options.positional.first().copied().unwrap_or("full")));
    let seed: u64 = options
        .positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let campaign = Campaign::new(CampaignConfig {
        datasets: UciDataset::all().to_vec(),
        effort,
        seed,
        max_accuracy_loss: 0.05,
        objectives: options.objectives.clone().unwrap_or_default(),
        accuracy_tier: pmlp_core::AccuracyTier::default(),
        store_dir: options.store.clone(),
        remote_store: options.remote_store.clone(),
        remote_timeout_ms: options.remote_timeout_ms,
        durability: options.durability.unwrap_or_default(),
        remote_cooldown_ms: None,
        resume: options.resume,
        worker: options.worker_options(),
    });
    let (result, campaign_stats) = campaign.run_with_stats()?;
    let mut rows: Vec<HeadlineRow> = result
        .reports
        .iter()
        .flat_map(|report| report.headline.clone())
        .collect();

    // The combined (GA) claim is made for WhiteWine in the paper's Fig. 2.
    let mut fig2 = Figure2Experiment::new(UciDataset::WhiteWine, effort, seed);
    if let Some(space) = &options.objectives {
        fig2 = fig2.with_objectives(space.clone());
    }
    // The campaign above already published WhiteWine's baseline to the
    // store's characterization cache, so this engine builds from a document
    // read instead of retraining.
    let backend = options.open_backend()?;
    let mut engine = fig2.build_engine_cached(backend.as_deref())?;
    if let Some(backend) = backend {
        engine = engine.with_backend(backend)?;
    }
    let combined = if engine.store().is_some() {
        let checkpoint = "table_headline_nsga2.json";
        // Without --resume, any existing checkpoint is discarded: the
        // search recomputes (against the warm store) instead of replaying.
        if !options.resume {
            engine
                .store()
                .expect("store attached")
                .remove_doc(checkpoint)?;
        }
        fig2.run_with_checkpoint_doc(&engine, checkpoint)?
    } else {
        fig2.run_with(&engine)?
    };
    let combined_row = headline_combined(&combined, 0.05);
    rows.push(combined_row.clone());

    println!("{}", render_headline(&rows));

    // Cross-dataset averages per technique (counting only datasets where the
    // technique met the threshold, as the paper does).
    println!("=== cross-dataset average area gain at <=5% accuracy loss ===");
    for summary in result.technique_summaries() {
        println!("{summary}");
    }
    let combined_summary = TechniqueSummary {
        technique: Technique::Combined.name().to_string(),
        mean_gain: combined_row.area_gain,
        max_gain: combined_row.area_gain,
        datasets_met: usize::from(combined_row.area_gain.is_some()),
        datasets_total: 1,
    };
    println!("{combined_summary}");

    persist_json("table_headline", &rows);

    let fresh = campaign_stats.fresh_evaluations + engine.stats().misses;
    if options.has_store() {
        println!(
            "persistence: {} dataset(s) resumed, {} fresh evaluation(s) total",
            campaign_stats.resumed.len(),
            fresh
        );
    }
    if options.require_warm && fresh > 0 {
        return Err(format!("--require-warm: {fresh} fresh evaluation(s) were needed").into());
    }
    Ok(())
}
