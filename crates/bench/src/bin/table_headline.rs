//! Regenerates the paper's Section III headline claims: the best area
//! reduction achievable with at most 5% accuracy loss, per technique and per
//! dataset, plus the cross-dataset averages quoted in the text
//! (≈5x quantization, ≈2.8x pruning, ≈3.5x clustering, up to ≈8x combined).
//!
//! Usage:
//!   cargo run --release -p pmlp-bench --bin table_headline -- [full|quick] [seed] [--quick]
//!
//! `--quick` anywhere on the command line forces the reduced CI effort.

use pmlp_bench::{parse_effort, persist_json, render_headline, split_cli_args};
use pmlp_core::experiment::{
    headline_combined, headline_summary, Figure1Experiment, Figure2Experiment,
};
use pmlp_core::report::HeadlineRow;
use pmlp_core::sweep::Technique;
use pmlp_data::UciDataset;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, effort_flag) = split_cli_args(&args);
    let effort =
        effort_flag.unwrap_or_else(|| parse_effort(positional.first().copied().unwrap_or("full")));
    let seed: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);

    let mut rows: Vec<HeadlineRow> = Vec::new();
    for dataset in UciDataset::all() {
        let result = Figure1Experiment::new(dataset, effort, seed).run()?;
        rows.extend(headline_summary(&result, 0.05));
    }
    // The combined (GA) claim is made for WhiteWine in the paper's Fig. 2.
    let combined = Figure2Experiment::new(UciDataset::WhiteWine, effort, seed).run()?;
    rows.push(headline_combined(&combined, 0.05));

    println!("{}", render_headline(&rows));

    // Cross-dataset averages per technique (counting only datasets where the
    // technique met the threshold, as the paper does).
    let mut by_technique: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for row in &rows {
        if let Some(gain) = row.area_gain {
            by_technique
                .entry(match row.technique.as_str() {
                    t if t == Technique::Quantization.name() => "quantization",
                    t if t == Technique::Pruning.name() => "pruning",
                    t if t == Technique::Clustering.name() => "weight clustering",
                    _ => "combined (GA)",
                })
                .or_default()
                .push(gain);
        }
    }
    println!("=== cross-dataset average area gain at <=5% accuracy loss ===");
    for (technique, gains) in &by_technique {
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        let max = gains.iter().cloned().fold(0.0_f64, f64::max);
        println!(
            "{technique:<18} avg {avg:.2}x   max {max:.2}x   ({} datasets)",
            gains.len()
        );
    }
    persist_json("table_headline", &rows);
    Ok(())
}
