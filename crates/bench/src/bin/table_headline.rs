//! Regenerates the paper's Section III headline claims: the best area
//! reduction achievable with at most 5% accuracy loss, per technique and per
//! dataset, plus the cross-dataset averages quoted in the text
//! (≈5x quantization, ≈2.8x pruning, ≈3.5x clustering, up to ≈8x combined).
//!
//! The standalone-technique rows come from a full cross-dataset `Campaign`
//! (every registry dataset, fanned out over the worker pool); the combined
//! claim is the WhiteWine hardware-aware GA of Fig. 2.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmlp-bench --bin table_headline -- [full|quick] [seed] [--quick]
//! ```
//!
//! `--quick` anywhere on the command line forces the reduced CI effort.

use pmlp_bench::{parse_effort, persist_json, render_headline, split_cli_args};
use pmlp_core::campaign::{Campaign, CampaignConfig};
use pmlp_core::experiment::{headline_combined, Figure2Experiment};
use pmlp_core::report::{HeadlineRow, TechniqueSummary};
use pmlp_core::sweep::Technique;
use pmlp_data::UciDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, effort_flag) = split_cli_args(&args);
    let effort =
        effort_flag.unwrap_or_else(|| parse_effort(positional.first().copied().unwrap_or("full")));
    let seed: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);

    let campaign = Campaign::new(CampaignConfig {
        datasets: UciDataset::all().to_vec(),
        effort,
        seed,
        max_accuracy_loss: 0.05,
    });
    let result = campaign.run()?;
    let mut rows: Vec<HeadlineRow> = result
        .reports
        .iter()
        .flat_map(|report| report.headline.clone())
        .collect();

    // The combined (GA) claim is made for WhiteWine in the paper's Fig. 2.
    let combined = Figure2Experiment::new(UciDataset::WhiteWine, effort, seed).run()?;
    let combined_row = headline_combined(&combined, 0.05);
    rows.push(combined_row.clone());

    println!("{}", render_headline(&rows));

    // Cross-dataset averages per technique (counting only datasets where the
    // technique met the threshold, as the paper does).
    println!("=== cross-dataset average area gain at <=5% accuracy loss ===");
    for summary in result.technique_summaries() {
        println!("{summary}");
    }
    let combined_summary = TechniqueSummary {
        technique: Technique::Combined.name().to_string(),
        mean_gain: combined_row.area_gain,
        max_gain: combined_row.area_gain,
        datasets_met: usize::from(combined_row.area_gain.is_some()),
        datasets_total: 1,
    };
    println!("{combined_summary}");

    persist_json("table_headline", &rows);
    Ok(())
}
