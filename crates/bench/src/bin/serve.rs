//! Runs the `pmlp-serve` evaluation-cache server: a dependency-free HTTP
//! key-value tier that lets a fleet of workers share one content-addressed
//! evaluation cache (records, NSGA-II checkpoints and campaign completion
//! markers).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmlp-bench --bin serve -- \
//!     [host:port] [--store DIR] [--token TOKEN] [--workers N] \
//!     [--durability POLICY] [--drain-timeout-ms N]
//! ```
//!
//! `host:port` defaults to `127.0.0.1:7878` (use port `0` for an ephemeral
//! port — the bound address is printed on startup). With `--store DIR` the
//! server persists into the standard local JSONL store format under `DIR`
//! (fronted by an in-memory record index preloaded at startup), so an
//! existing single-machine `--store` directory can be promoted to a shared
//! server without conversion; without it, state lives in memory for the
//! server's lifetime.
//!
//! `--token TOKEN` turns on bearer auth: every request except the
//! `/v1/healthz` liveness probe must carry `Authorization: Bearer TOKEN`, and
//! workers embed the token in their store URL. `--workers N` sizes the
//! connection worker pool (default: one per core, clamped to 4..=32).
//! `--durability POLICY` (`buffered`, `sync-each-append`, `sync-on-seal`)
//! picks how eagerly a `--store`-backed server fsyncs; a graceful shutdown
//! (SIGTERM/SIGINT) always drains in-flight requests and fsyncs before
//! exiting, whatever the policy. `--drain-timeout-ms N` bounds how long the
//! drain waits for in-flight requests before abandoning them (default 5s).
//!
//! Point workers at the server with `--remote-store http://host:port` (or
//! `http://TOKEN@host:port` when auth is on) on the
//! `fig1`/`fig2`/`table_headline`/`campaign` binaries.

use pmlp_bench::parse_cli;
use pmlp_serve::{run, ServeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_cli(&args);
    options.validate()?;
    let addr = options
        .positional
        .first()
        .copied()
        .unwrap_or("127.0.0.1:7878")
        .to_string();
    let mut config = ServeConfig {
        addr,
        store_dir: options.store.clone(),
        token: options.token.clone(),
        workers: options.workers.unwrap_or(0),
        durability: options.durability.unwrap_or_default(),
        ..ServeConfig::default()
    };
    if let Some(ms) = options.drain_timeout_ms {
        config.drain_timeout = std::time::Duration::from_millis(ms);
    }
    run(&config)?;
    Ok(())
}
