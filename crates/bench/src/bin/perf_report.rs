//! Tracked performance baseline: times the stages that dominate a paper
//! reproduction run — baseline training, a single candidate evaluation, the
//! hardware cost of one candidate under both tiers (analytic fast path vs
//! full gate-level synthesis), the quick Fig. 2 experiment, the quick
//! full-registry campaign, and the persistence tier (local store append /
//! replay rates plus the `pmlp-serve` loopback round trip) — and writes the
//! numbers to `BENCH_campaign.json` so every future PR is measured against a
//! recorded trajectory.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmlp-bench --bin perf_report -- [--quick] [seed]
//! ```
//!
//! `--quick` lowers the repetition counts (CI smoke); the measured stages are
//! identical. The JSON lands in the working directory (repo root in CI) and a
//! copy under `target/experiment-results/`.
//!
//! Wall-clock numbers are machine-relative: compare `BENCH_campaign.json`
//! across commits measured on the same machine, not across machines. The
//! `hw_eval_speedup` ratio (fast path vs full synthesis on the same spec) is
//! the most machine-independent figure.

use pmlp_bench::{persist_json, split_cli_args};
use pmlp_core::campaign::{Campaign, CampaignConfig};
use pmlp_core::engine::{EvalEngine, Evaluator};
use pmlp_core::experiment::{Effort, Figure2Experiment};
use pmlp_data::UciDataset;
use pmlp_hw::constmul::RecodingStrategy;
use pmlp_hw::cost::estimate_circuit;
use pmlp_hw::{
    BespokeMlpCircuit, CellLibrary, CircuitSpec, HwActivation, LayerSpec, SharingStrategy,
};
use pmlp_minimize::MinimizationConfig;
use serde::Serialize;
use std::time::Instant;

/// The machine-readable perf baseline written to `BENCH_campaign.json`.
#[derive(Debug, Serialize)]
struct PerfReport {
    /// Report schema identifier.
    schema: String,
    /// `quick` (CI smoke) or `full` repetition budget.
    mode: String,
    /// RNG seed used for all measured stages.
    seed: u64,
    /// Wall-clock timings of the measured stages.
    timings: Timings,
    /// Evaluation-cost counters of the quick campaign run.
    campaign_engine: CampaignEngine,
    /// Throughput of the pure-integer inference engine (the default accuracy
    /// tier) on a WhiteWine-shaped candidate.
    int_infer: IntInferMetrics,
    /// Persistence-tier throughput (local JSONL store + pmlp-serve loopback).
    store: StoreMetrics,
    /// Fault-tolerance counters of a scripted outage/recovery cycle against
    /// a loopback server: retries, circuit-breaker transitions and journal
    /// replay volume (see `ResilienceStats`).
    resilience: ResilienceMetrics,
    /// Distributed campaign scheduling: one lease-queue worker vs two
    /// loopback workers splitting the same battery by work stealing, at
    /// identical per-dataset hypervolumes.
    fleet: FleetMetrics,
    /// Process-wide constant-multiplier cost-cache counters at exit.
    multiplier_cache: MultiplierCache,
    /// Context for readers of the trajectory.
    notes: String,
}

#[derive(Debug, Serialize)]
struct Timings {
    /// Quick-budget baseline training (Seeds), seconds.
    baseline_train_secs: f64,
    /// One cold candidate evaluation through the engine fast path, seconds.
    single_eval_cold_secs: f64,
    /// The same evaluation answered from the engine cache, seconds.
    single_eval_warm_secs: f64,
    /// Hardware cost of one WhiteWine-shaped candidate via the analytic fast
    /// path, microseconds (median).
    hw_eval_fast_path_us: f64,
    /// The same candidate through full gate-level synthesis + netlist
    /// analyses, microseconds (median).
    hw_eval_full_synthesis_us: f64,
    /// `hw_eval_full_synthesis_us / hw_eval_fast_path_us`.
    hw_eval_speedup: f64,
    /// Quick Fig. 2 experiment (WhiteWine sweeps + GA), seconds.
    fig2_quick_secs: f64,
    /// Quick full-registry campaign (12 datasets), seconds.
    campaign_quick_secs: f64,
}

#[derive(Debug, Serialize)]
struct CampaignEngine {
    /// Full pipeline evaluations across all datasets (cache misses).
    evaluations: usize,
    /// Evaluations served by the analytic fast path.
    fast_path_evals: usize,
    /// Evaluations (plus finalist verifications) that ran full synthesis.
    full_synthesis_evals: usize,
    /// Objective space the campaign's Pareto fronts were computed in.
    objectives: String,
    /// Per-dataset `(name, hypervolume)` in that space — the
    /// baseline-referenced dominated volume of each dataset's evaluated
    /// points, a scalar quality-of-front number future PRs can diff.
    hypervolumes: Vec<(String, f64)>,
}

#[derive(Debug, Serialize)]
struct IntInferMetrics {
    /// Test rows classified per timed repetition.
    rows: usize,
    /// Batch classification throughput, rows/second (best of the timed
    /// repetitions, i.e. steady-state with warm caches and threads).
    rows_per_sec: f64,
    /// Whether the accumulator bound forced the `i64` kernel (`false` = the
    /// narrow `i32` kernel sufficed).
    wide_kernel: bool,
}

#[derive(Debug, Serialize)]
struct StoreMetrics {
    /// Records pushed through each measured path.
    records: usize,
    /// Appends to a local JSONL record log, records/second (one flushed
    /// whole-line write each).
    local_append_records_per_sec: f64,
    /// Warm-start replay of that log (open + parse every record),
    /// records/second — the cost a resumed run pays before its first
    /// evaluation.
    local_replay_records_per_sec: f64,
    /// The same replay through a loopback `pmlp-serve` instance (HTTP scan of
    /// the full log), records/second.
    remote_replay_records_per_sec: f64,
    /// Appends through the loopback server the way an engine flushes them at
    /// `evaluate_batch` boundaries: batches of 64 records per keep-alive HTTP
    /// POST, records/second. This is the rate a remote-store worker actually
    /// pays per generation.
    remote_append_records_per_sec: f64,
    /// Appends through the loopback server as one record per request (still
    /// on a pooled keep-alive connection) — the per-request floor,
    /// records/second.
    remote_single_append_records_per_sec: f64,
    /// The server's own counters after the remote measurements.
    serve: ServeCounters,
}

#[derive(Debug, Serialize)]
struct ServeCounters {
    /// Requests the loopback server handled.
    requests: u64,
    /// Connections its accept loop handed to the worker pool.
    connections_accepted: u64,
    /// Requests served on an already-used (reused keep-alive) connection.
    requests_reused: u64,
    /// Request bytes read off the wire.
    bytes_in: u64,
    /// Response bytes written to the wire.
    bytes_out: u64,
}

#[derive(Debug, Serialize)]
struct ResilienceMetrics {
    /// Records written during the scripted outage window (all must replay).
    outage_appends: usize,
    /// Remote request retries after transient failures.
    remote_retries: usize,
    /// Transient remote errors (connect/timeout/5xx/early close).
    transient_errors: usize,
    /// Permanent remote errors (4xx/protocol) — never retried.
    permanent_errors: usize,
    /// Circuit-breaker closed → open transitions.
    breaker_opens: usize,
    /// Circuit-breaker recoveries (half-open probe succeeded).
    breaker_recoveries: usize,
    /// Records journaled locally while the remote was unreachable.
    journaled_records: usize,
    /// Journaled records replayed to the recovered remote.
    replayed_records: usize,
    /// Journal entries evicted at capacity (must be 0 in this scenario).
    journal_dropped: usize,
    /// Wall-clock of the whole outage/recovery cycle, seconds.
    cycle_secs: f64,
}

#[derive(Debug, Serialize)]
struct FleetMetrics {
    /// Datasets in the measured battery (the full quick registry).
    datasets: usize,
    /// Wall-clock of ONE worker draining the whole battery through the
    /// lease queue of a loopback `pmlp-serve` store, seconds.
    single_worker_secs: f64,
    /// Wall-clock of TWO workers against a fresh loopback store, splitting
    /// the same battery dynamically by claiming/stealing leases, seconds
    /// (slower worker, i.e. time to the last marker).
    two_worker_secs: f64,
    /// `single_worker_secs / two_worker_secs` — the distributed-scheduling
    /// win at equal science.
    speedup: f64,
    /// Datasets each of the two workers computed (the dynamic split).
    two_worker_split: (usize, usize),
    /// Expired leases broken during the two-worker run (0 when nobody
    /// crashed — stealing only kicks in on dead peers).
    stolen: usize,
    /// Whether every per-dataset hypervolume of both fleet runs equals the
    /// classic single-process campaign's — the fixed-quality bar the
    /// wall-clock comparison is made at.
    hypervolumes_match_classic: bool,
}

#[derive(Debug, Serialize)]
struct MultiplierCache {
    /// Cache hits.
    hits: u64,
    /// Cache misses.
    misses: u64,
    /// Distinct cached `(code, width, recoding)` entries.
    entries: usize,
    /// `hits / (hits + misses)`.
    hit_rate: f64,
}

fn median_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// A WhiteWine-shaped candidate spec (11-25-5, 5-bit weights) — the same
/// deterministic generator the `hw_synthesis` criterion bench uses.
fn whitewine_like_spec() -> CircuitSpec {
    let weight = |i: usize, j: usize| -> i64 { ((i * 31 + j * 17 + 7) % 31) as i64 - 15 };
    let hidden: Vec<Vec<i64>> = (0..25)
        .map(|n| (0..11).map(|i| weight(n, i)).collect())
        .collect();
    let output: Vec<Vec<i64>> = (0..5)
        .map(|n| (0..25).map(|i| weight(n + 100, i)).collect())
        .collect();
    CircuitSpec::new(
        4,
        vec![
            LayerSpec::new(hidden, 5, HwActivation::ReLU).expect("hidden layer"),
            LayerSpec::new(output, 5, HwActivation::Argmax).expect("output layer"),
        ],
    )
    .expect("spec")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, effort_flag) = split_cli_args(&args);
    let quick = effort_flag == Some(Effort::Quick);
    let seed: u64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let hw_reps = if quick { 7 } else { 21 };

    // 1. Baseline training (quick budget, Seeds).
    let t0 = Instant::now();
    let engine = Figure2ExperimentBaseline::build(seed)?;
    let baseline_train_secs = t0.elapsed().as_secs_f64();

    // 2. Single candidate evaluation: cold (runs minimize + fast-path
    //    hardware cost), then warm (engine memo cache).
    let config = MinimizationConfig::default().with_weight_bits(4);
    let t0 = Instant::now();
    let cold = engine.evaluate(&config)?;
    let single_eval_cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm = engine.evaluate(&config)?;
    let single_eval_warm_secs = t0.elapsed().as_secs_f64();
    assert_eq!(cold, warm, "cache must reproduce the evaluation exactly");

    // 3. Per-candidate hardware evaluation: analytic fast path vs full
    //    synthesis on the same WhiteWine-shaped spec.
    let spec = whitewine_like_spec();
    let library = CellLibrary::egt();
    let hw_eval_fast_path_us = median_us(hw_reps, || {
        let report = estimate_circuit(
            &spec,
            &library,
            SharingStrategy::None,
            RecodingStrategy::Csd,
        )
        .expect("fast path");
        std::hint::black_box(report.area.total_mm2);
    });
    let hw_eval_full_synthesis_us = median_us(hw_reps, || {
        let circuit = BespokeMlpCircuit::synthesize(&spec, &library).expect("full synthesis");
        std::hint::black_box((
            circuit.area().total_mm2,
            circuit.power().total_uw,
            circuit.timing().critical_path_us,
        ));
    });

    // 4. Quick Fig. 2 (sweeps + GA on WhiteWine).
    let t0 = Instant::now();
    let fig2 = Figure2Experiment::new(UciDataset::WhiteWine, Effort::Quick, seed).run()?;
    let fig2_quick_secs = t0.elapsed().as_secs_f64();
    assert!(!fig2.combined.points.is_empty());

    // 5. Quick full-registry campaign.
    let t0 = Instant::now();
    let campaign = Campaign::new(CampaignConfig {
        effort: Effort::Quick,
        seed,
        ..CampaignConfig::default()
    })
    .run()?;
    let campaign_quick_secs = t0.elapsed().as_secs_f64();

    // 6. Pure-integer inference throughput on the same WhiteWine-shaped spec
    //    (the per-row cost of the default accuracy tier).
    let int_infer = measure_int_infer(&spec, if quick { 100_000 } else { 1_000_000 })?;

    // 7. Persistence tier: local store append/replay rate and the same
    //    record log served over a loopback pmlp-serve instance.
    let store = measure_store(if quick { 256 } else { 2048 })?;

    // 8. Fault tolerance: a scripted outage/recovery cycle — breaker opens,
    //    appends journal, the restarted server is rejoined and replayed.
    let resilience = measure_resilience(if quick { 4 } else { 16 })?;

    // 9. Distributed scheduling: one lease-queue worker vs two loopback
    //    workers splitting the quick registry battery by work stealing.
    let fleet = measure_fleet(seed, &campaign)?;

    let mul = pmlp_hw::cost::multiplier_cache_stats();
    let report = PerfReport {
        schema: "pmlp-perf-report/v1".into(),
        mode: if quick { "quick".into() } else { "full".into() },
        seed,
        timings: Timings {
            baseline_train_secs,
            single_eval_cold_secs,
            single_eval_warm_secs,
            hw_eval_fast_path_us,
            hw_eval_full_synthesis_us,
            hw_eval_speedup: hw_eval_full_synthesis_us / hw_eval_fast_path_us.max(1e-9),
            fig2_quick_secs,
            campaign_quick_secs,
        },
        store,
        resilience,
        fleet,
        int_infer,
        campaign_engine: CampaignEngine {
            evaluations: campaign.reports.iter().map(|r| r.evaluations).sum(),
            fast_path_evals: campaign.reports.iter().map(|r| r.fast_path_evals).sum(),
            full_synthesis_evals: campaign
                .reports
                .iter()
                .map(|r| r.full_synthesis_evals)
                .sum(),
            objectives: campaign.objectives.clone(),
            hypervolumes: campaign
                .reports
                .iter()
                .map(|r| (r.name.clone(), r.hypervolume))
                .collect(),
        },
        multiplier_cache: MultiplierCache {
            hits: mul.hits,
            misses: mul.misses,
            entries: mul.entries,
            hit_rate: mul.hit_rate(),
        },
        notes: "Wall-clock values are machine-relative; compare across commits measured on one \
                machine. hw_eval_speedup (fast path vs full synthesis, same spec) is the most \
                machine-independent figure. Pre-fast-path reference on the authoring machine \
                (PR-2 commit, same harness): campaign --quick wall time 0.42-0.45 s vs 0.13 s \
                after this change (~3.3x)."
            .into(),
    };

    let json = serde_json::to_string_pretty(&report)?;
    std::fs::write("BENCH_campaign.json", &json)?;
    persist_json("BENCH_campaign", &report);
    println!("{json}");
    println!("\nwrote BENCH_campaign.json");
    Ok(())
}

/// Times batch classification through [`pmlp_hw::IntInferEngine`] on `spec`
/// with `rows` deterministic synthetic test rows. Reports the best of three
/// repetitions — steady-state throughput with the rayon pool warm.
fn measure_int_infer(
    spec: &CircuitSpec,
    rows: usize,
) -> Result<IntInferMetrics, Box<dyn std::error::Error>> {
    let engine = pmlp_hw::IntInferEngine::from_spec(spec)?;
    let levels = (1u16 << spec.input_bits) - 1;
    let features = engine.input_count();
    let data: Vec<u16> = (0..rows * features)
        .map(|i| ((i * 31 + i / features * 17 + 7) % (levels as usize + 1)) as u16)
        .collect();
    let mut best_secs = f64::INFINITY;
    let mut checksum = 0usize;
    for _ in 0..3 {
        let t0 = Instant::now();
        let labels = engine.classify_batch(&data);
        best_secs = best_secs.min(t0.elapsed().as_secs_f64());
        checksum = labels.iter().sum();
    }
    std::hint::black_box(checksum);
    Ok(IntInferMetrics {
        rows,
        rows_per_sec: rows as f64 / best_secs.max(1e-9),
        wide_kernel: engine.uses_wide_kernel(),
    })
}

/// Times the persistence tiers with `records` synthetic evaluation records:
/// local JSONL append + warm-start replay, then the same log appended to and
/// scanned from a loopback `pmlp-serve` instance.
fn measure_store(records: usize) -> Result<StoreMetrics, Box<dyn std::error::Error>> {
    use pmlp_core::store::{EvalRecord, EvalStore, RemoteBackend, StoreBackend};

    let record = synthetic_record;
    let rate = |n: usize, secs: f64| n as f64 / secs.max(1e-9);

    // Local tier.
    let dir = std::env::temp_dir().join(format!("pmlp-perf-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = EvalStore::open(&dir, "perf", 0xBE7C)?;
    let t0 = Instant::now();
    for i in 0..records {
        store.append(&record(i))?;
    }
    let local_append = t0.elapsed().as_secs_f64();
    drop(store);
    let t0 = Instant::now();
    let mut store = EvalStore::open(&dir, "perf", 0xBE7C)?;
    let replayed = store.warm_start();
    let local_replay = t0.elapsed().as_secs_f64();
    assert_eq!(
        replayed.len(),
        records,
        "replay must reproduce every record"
    );
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    // Remote tier over loopback. Single appends and batched appends go to
    // distinct fingerprints so each path writes (and the scan reads) a
    // well-defined log.
    let server = pmlp_serve::spawn(&pmlp_serve::ServeConfig::default())?;
    let client = RemoteBackend::new(&server.url())?;
    let t0 = Instant::now();
    for i in 0..records {
        client.append("perf", 0xBE7C, &record(i))?;
    }
    let remote_single_append = t0.elapsed().as_secs_f64();
    let batch: Vec<EvalRecord> = (0..records).map(record).collect();
    let t0 = Instant::now();
    for chunk in batch.chunks(64) {
        client.append_batch("perf", 0xBA7C, chunk)?;
    }
    let remote_append = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let outcome = client.scan("perf", 0xBE7C)?;
    let remote_replay = t0.elapsed().as_secs_f64();
    assert_eq!(outcome.records.len(), records);
    let serve_stats = server.stats();
    server.stop();

    Ok(StoreMetrics {
        records,
        local_append_records_per_sec: rate(records, local_append),
        local_replay_records_per_sec: rate(records, local_replay),
        remote_replay_records_per_sec: rate(records, remote_replay),
        remote_append_records_per_sec: rate(records, remote_append),
        remote_single_append_records_per_sec: rate(records, remote_single_append),
        serve: ServeCounters {
            requests: serve_stats.requests,
            connections_accepted: serve_stats.connections_accepted,
            requests_reused: serve_stats.requests_reused,
            bytes_in: serve_stats.bytes_in,
            bytes_out: serve_stats.bytes_out,
        },
    })
}

/// The deterministic synthetic evaluation record the persistence stages push
/// around.
fn synthetic_record(i: usize) -> pmlp_core::store::EvalRecord {
    use pmlp_core::engine::EvalKey;
    use pmlp_core::objective::{AccuracyTier, DesignPoint, SynthesisTier};
    pmlp_core::store::EvalRecord {
        key: EvalKey {
            weight_bits: (i % 14) as u8 + 2,
            sparsity_millis: (i * 37 % 900) as u32,
            clusters: i % 7,
            input_bits: 4,
            fine_tune_epochs: 2,
            salt: i as u64,
            accuracy_tier: AccuracyTier::Integer,
        },
        tier: SynthesisTier::FastPath,
        point: DesignPoint {
            config: MinimizationConfig::default().with_weight_bits((i % 14) as u8 + 2),
            accuracy: 0.5 + (i % 50) as f64 / 100.0,
            area_mm2: 10.0 + i as f64,
            power_uw: 100.0 + i as f64,
            delay_us: 1.0 + (i % 10) as f64 / 10.0,
            normalized_accuracy: 0.9,
            normalized_area: 0.5,
            sparsity: 0.1,
            gate_count: 100 + i,
        },
        artifacts: None,
    }
}

/// Runs a scripted outage/recovery cycle against a loopback server — appends
/// flow, the server dies, appends keep flowing (journaled), the server comes
/// back on the same address, the breaker rejoins and the journal replays —
/// and reports the resulting fault-tolerance counters.
fn measure_resilience(
    outage_appends: usize,
) -> Result<ResilienceMetrics, Box<dyn std::error::Error>> {
    use pmlp_core::store::{
        BreakerConfig, MemoryBackend, RemoteBackend, StoreBackend, TieredStore,
    };

    let t0 = Instant::now();
    let server = pmlp_serve::spawn(&pmlp_serve::ServeConfig::default())?;
    let addr = server.addr();
    // Zero cooldown: the recovery probe happens on the next write instead of
    // after the production default's 1 s wait, so the measured cycle is the
    // work, not the sleep.
    let tiered = TieredStore::with_breaker(
        Box::new(MemoryBackend::new()),
        Box::new(RemoteBackend::new(&format!("http://{addr}"))?),
        BreakerConfig {
            failure_threshold: 1,
            cooldown: std::time::Duration::ZERO,
        },
    );
    for i in 0..outage_appends {
        tiered.append("resil", 0xFA11, &synthetic_record(i))?;
    }
    server.stop();
    // The outage window: every append succeeds locally and is journaled.
    for i in 0..outage_appends {
        tiered.append("resil", 0xFA11, &synthetic_record(outage_appends + i))?;
    }
    let restarted = pmlp_serve::spawn(&pmlp_serve::ServeConfig {
        addr: addr.to_string(),
        ..pmlp_serve::ServeConfig::default()
    })?;
    // The next write probes the half-open breaker, rejoins and replays.
    tiered.append("resil", 0xFA11, &synthetic_record(2 * outage_appends))?;
    let stats = tiered
        .resilience()
        .expect("tiered stores report resilience");
    let replayed = RemoteBackend::new(&restarted.url())?
        .scan("resil", 0xFA11)?
        .records
        .len();
    restarted.stop();
    assert!(
        replayed >= outage_appends,
        "outage-window appends must replay ({replayed} on the restarted server)"
    );
    assert_eq!(stats.journal_dropped, 0, "journal must not overflow");
    Ok(ResilienceMetrics {
        outage_appends,
        remote_retries: stats.remote_retries,
        transient_errors: stats.transient_errors,
        permanent_errors: stats.permanent_errors,
        breaker_opens: stats.breaker_opens,
        breaker_recoveries: stats.breaker_recoveries,
        journaled_records: stats.journaled_records,
        replayed_records: stats.replayed_records,
        journal_dropped: stats.journal_dropped,
        cycle_secs: t0.elapsed().as_secs_f64(),
    })
}

/// Measures the work-stealing campaign scheduler: the full quick registry
/// battery drained through lease-queue worker mode against a loopback
/// `pmlp-serve` coordination store — once by a single worker, once split
/// dynamically between two workers — and checks both fleets land on exactly
/// the classic campaign's per-dataset hypervolumes.
///
/// Each arm gets its own fresh server so neither inherits the other's
/// evaluation cache, baselines or markers.
fn measure_fleet(
    seed: u64,
    classic: &pmlp_core::campaign::CampaignResult,
) -> Result<FleetMetrics, Box<dyn std::error::Error>> {
    use pmlp_core::campaign::WorkerOptions;

    let worker_config = |url: &str, id: &str| CampaignConfig {
        effort: Effort::Quick,
        seed,
        remote_store: Some(url.to_string()),
        worker: Some(WorkerOptions::new(id).with_steal(true)),
        ..CampaignConfig::default()
    };

    // Arm 1: one worker claims and computes every dataset itself.
    let server = pmlp_serve::spawn(&pmlp_serve::ServeConfig::default())?;
    let t0 = Instant::now();
    let (single_result, _) =
        Campaign::new(worker_config(&server.url(), "solo")).run_with_stats()?;
    let single_worker_secs = t0.elapsed().as_secs_f64();
    server.stop();

    // Arm 2: two workers split the battery through the same lease queue.
    let server = pmlp_serve::spawn(&pmlp_serve::ServeConfig::default())?;
    let t0 = Instant::now();
    let spawn = |id: &str| {
        let config = worker_config(&server.url(), id);
        std::thread::spawn(move || Campaign::new(config).run_with_stats())
    };
    let first = spawn("w1");
    let second = spawn("w2");
    let (result_a, stats_a) = first.join().expect("worker w1 panicked")?;
    let (result_b, stats_b) = second.join().expect("worker w2 panicked")?;
    let two_worker_secs = t0.elapsed().as_secs_f64();
    server.stop();

    assert_eq!(
        result_a, result_b,
        "both fleet workers must assemble the same battery result"
    );
    let matches = |result: &pmlp_core::campaign::CampaignResult| {
        result.reports.len() == classic.reports.len()
            && result
                .reports
                .iter()
                .zip(&classic.reports)
                .all(|(fleet, single)| fleet.hypervolume == single.hypervolume)
    };
    let hypervolumes_match_classic = matches(&single_result) && matches(&result_a);
    assert!(
        hypervolumes_match_classic,
        "fleet runs must reach the classic campaign's hypervolumes exactly"
    );

    Ok(FleetMetrics {
        datasets: classic.reports.len(),
        single_worker_secs,
        two_worker_secs,
        speedup: single_worker_secs / two_worker_secs.max(1e-9),
        two_worker_split: (stats_a.computed.len(), stats_b.computed.len()),
        stolen: stats_a.stolen.len() + stats_b.stolen.len(),
        hypervolumes_match_classic,
    })
}

/// Small helper so stage 1 reads as "build the quick baseline engine".
struct Figure2ExperimentBaseline;

impl Figure2ExperimentBaseline {
    fn build(seed: u64) -> Result<EvalEngine, pmlp_core::CoreError> {
        Figure2Experiment::new(UciDataset::Seeds, Effort::Quick, seed).build_engine()
    }
}
