//! Regenerates Figure 1 of the paper: area-accuracy Pareto fronts of the
//! three standalone minimization techniques, one subplot per dataset,
//! normalized to the un-minimized bespoke baseline.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmlp-bench --bin fig1 -- \
//!     [dataset|all] [full|quick] [seed] [--quick] [--objectives LIST] \
//!     [--store DIR] [--remote-store URL] [--resume] [--require-warm]
//! ```
//!
//! `all` means the four datasets of the paper's Fig. 1 (any registry dataset
//! can be named explicitly; the full registry is covered by the `campaign`
//! binary). `--quick` anywhere on the command line forces the reduced CI
//! effort. `--objectives accuracy,area,energy` reports the Pareto fronts in
//! that objective space instead of the classic `(accuracy, area)` plane.
//!
//! With `--store DIR` every evaluation persists into (and warm-starts from)
//! the crash-safe store under `DIR`; a re-run of the same figure is then pure
//! cache replay. `--remote-store URL` adds (or replaces it with) a shared
//! `pmlp-serve` tier — records stream in from the server and fresh ones
//! replicate back, so another machine's evaluations count as warm here.
//! `--require-warm` fails the run if any evaluation had to be computed
//! fresh. (`--resume` is accepted for symmetry with `campaign`; the sweeps
//! are stateless, so warm-starting the store is already a resume.)

use pmlp_bench::{parse_cli, parse_effort, persist_json, render_figure1, render_headline};
use pmlp_core::experiment::{headline_summary, Figure1Experiment};
use pmlp_data::UciDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_cli(&args);
    options.validate()?;
    let which = options.positional.first().copied().unwrap_or("all");
    let effort = options
        .effort
        .unwrap_or_else(|| parse_effort(options.positional.get(1).copied().unwrap_or("full")));
    let seed: u64 = options
        .positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let datasets: Vec<UciDataset> = if which.eq_ignore_ascii_case("all") {
        UciDataset::fig1().to_vec()
    } else {
        vec![UciDataset::parse(which)?]
    };

    let mut fresh_evaluations = 0;
    for dataset in datasets {
        let start = std::time::Instant::now();
        let mut experiment = Figure1Experiment::new(dataset, effort, seed);
        if let Some(space) = &options.objectives {
            experiment = experiment.with_objectives(space.clone());
        }
        // The backend doubles as the baseline characterization cache: a
        // warm store answers the most expensive step (baseline training +
        // synthesis) with a single document read.
        let backend = options.open_backend()?;
        let mut engine = experiment.build_engine_cached(backend.as_deref())?;
        if let Some(backend) = backend {
            engine = engine.with_backend(backend)?;
        }
        let result = experiment.run_with(&engine)?;
        println!("{}", render_figure1(&result));
        let rows = headline_summary(&result, 0.05);
        println!("{}", render_headline(&rows));
        let stats = engine.stats();
        if options.has_store() {
            println!(
                "store: {} entries warm-started, {} fresh evaluation(s)",
                stats.warmed, stats.misses
            );
        }
        println!("(elapsed: {:.1}s)\n", start.elapsed().as_secs_f64());
        fresh_evaluations += stats.misses;
        persist_json(
            &format!("fig1_{}", dataset.to_string().to_lowercase()),
            &result,
        );
    }
    if options.require_warm && fresh_evaluations > 0 {
        return Err(
            format!("--require-warm: {fresh_evaluations} fresh evaluation(s) were needed").into(),
        );
    }
    Ok(())
}
