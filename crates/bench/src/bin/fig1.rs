//! Regenerates Figure 1 of the paper: area-accuracy Pareto fronts of the
//! three standalone minimization techniques, one subplot per dataset,
//! normalized to the un-minimized bespoke baseline.
//!
//! Usage:
//!   cargo run --release -p pmlp-bench --bin fig1 -- [dataset|all] [full|quick] [seed]

use pmlp_bench::{parse_effort, persist_json, render_figure1, render_headline};
use pmlp_core::experiment::{headline_summary, Figure1Experiment};
use pmlp_data::UciDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let effort = parse_effort(args.get(2).map(String::as_str).unwrap_or("full"));
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);

    let datasets: Vec<UciDataset> = if which.eq_ignore_ascii_case("all") {
        UciDataset::all().to_vec()
    } else {
        vec![UciDataset::parse(which)?]
    };

    for dataset in datasets {
        let start = std::time::Instant::now();
        let result = Figure1Experiment::new(dataset, effort, seed).run()?;
        println!("{}", render_figure1(&result));
        let rows = headline_summary(&result, 0.05);
        println!("{}", render_headline(&rows));
        println!("(elapsed: {:.1}s)\n", start.elapsed().as_secs_f64());
        persist_json(&format!("fig1_{}", dataset.to_string().to_lowercase()), &result);
    }
    Ok(())
}
