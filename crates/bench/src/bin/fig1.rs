//! Regenerates Figure 1 of the paper: area-accuracy Pareto fronts of the
//! three standalone minimization techniques, one subplot per dataset,
//! normalized to the un-minimized bespoke baseline.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmlp-bench --bin fig1 -- [dataset|all] [full|quick] [seed] [--quick]
//! ```
//!
//! `all` means the four datasets of the paper's Fig. 1 (any registry dataset
//! can be named explicitly; the full registry is covered by the `campaign`
//! binary). `--quick` anywhere on the command line forces the reduced CI
//! effort.

use pmlp_bench::{parse_effort, persist_json, render_figure1, render_headline, split_cli_args};
use pmlp_core::experiment::{headline_summary, Figure1Experiment};
use pmlp_data::UciDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, effort_flag) = split_cli_args(&args);
    let which = positional.first().copied().unwrap_or("all");
    let effort =
        effort_flag.unwrap_or_else(|| parse_effort(positional.get(1).copied().unwrap_or("full")));
    let seed: u64 = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    let datasets: Vec<UciDataset> = if which.eq_ignore_ascii_case("all") {
        UciDataset::fig1().to_vec()
    } else {
        vec![UciDataset::parse(which)?]
    };

    for dataset in datasets {
        let start = std::time::Instant::now();
        let result = Figure1Experiment::new(dataset, effort, seed).run()?;
        println!("{}", render_figure1(&result));
        let rows = headline_summary(&result, 0.05);
        println!("{}", render_headline(&rows));
        println!("(elapsed: {:.1}s)\n", start.elapsed().as_secs_f64());
        persist_json(
            &format!("fig1_{}", dataset.to_string().to_lowercase()),
            &result,
        );
    }
    Ok(())
}
