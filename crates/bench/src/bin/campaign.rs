//! Runs the cross-dataset reproduction campaign: every dataset in the
//! registry (or a comma-separated subset) is trained, swept with the three
//! standalone minimization techniques and summarized in one aggregate
//! paper-style table, with machine-readable JSON artifacts per run.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmlp-bench --bin campaign -- \
//!     [datasets|all] [full|quick] [seed] [--quick] [--float-accuracy] \
//!     [--objectives LIST] [--store DIR] [--remote-store URL] [--resume] \
//!     [--require-warm] [--worker-id ID] [--steal] [--lease-ttl-ms N]
//!
//! cargo run --release -p pmlp-bench --bin campaign -- \
//!     gc [full|quick] [seed] --store DIR
//! ```
//!
//! `datasets` is `all` (default) or a comma-separated list of registry names
//! (e.g. `seeds,balance,vertebral`). `--quick` anywhere on the command line
//! forces the reduced CI effort. `--float-accuracy` opts out of the default
//! pure-integer accuracy scoring back to the fake-quantized float model.
//! `--objectives accuracy,area,energy` selects the objective space the Pareto
//! fronts and per-dataset hypervolumes are computed in (any comma-separated
//! subset of `accuracy,area,power,delay,energy`; default `accuracy,area`,
//! byte-identical to the historical two-objective pipeline). The evaluation
//! store is objective-agnostic, so a store written under one space
//! warm-starts a campaign under any other with zero fresh evaluations.
//! Artifacts land under `target/experiment-results/campaign/`.
//!
//! With `--store DIR` every evaluation persists into the crash-safe store
//! under `DIR` and each finished dataset commits a completion marker;
//! `--resume` restarts an interrupted campaign from those markers (only
//! unfinished datasets are recomputed, and their evaluations warm-start from
//! the store). `--remote-store URL` shares the cache through a `pmlp-serve`
//! instance: a second worker pointed at the same server inherits every
//! evaluation and marker the first one computed. `--require-warm` makes the
//! run fail if anything had to be freshly evaluated — CI uses it to prove
//! that a store re-run is free.
//!
//! With `--worker-id ID` the process joins a *fleet*: instead of computing the
//! battery statically, it claims one dataset at a time through short-lived
//! leases in the shared store (`--store` and/or `--remote-store`), so K
//! workers pointed at the same store split the battery dynamically and each
//! assembles the full result from the fleet's completion markers. `--steal`
//! additionally lets it break a crashed peer's *expired* lease and take over
//! the dataset; `--lease-ttl-ms` tunes how long that takes to kick in.
//!
//! The `gc` subcommand garbage-collects a local store directory: it trains
//! every registry baseline at the given effort/seed to learn the *live*
//! fingerprints, then deletes record logs (and completion markers) bound to
//! any other baseline, merges duplicate keys, and compacts oversized logs.

use pmlp_bench::{parse_cli, parse_effort, CliOptions};
use pmlp_core::campaign::{Campaign, CampaignConfig};
use pmlp_core::experiment::Figure1Experiment;
use pmlp_core::report::render_campaign_table;
use pmlp_core::store::{EvalStore, GcPolicy};
use pmlp_data::UciDataset;
use rayon::prelude::*;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_cli(&args);
    options.validate()?;
    if options.positional.first().copied() == Some("gc") {
        return run_gc(&options);
    }
    let which = options.positional.first().copied().unwrap_or("all");
    let effort = options
        .effort
        .unwrap_or_else(|| parse_effort(options.positional.get(1).copied().unwrap_or("full")));
    let seed: u64 = options
        .positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let datasets: Vec<UciDataset> = if which.eq_ignore_ascii_case("all") {
        UciDataset::all().to_vec()
    } else {
        which
            .split(',')
            .map(UciDataset::parse)
            .collect::<Result<_, _>>()?
    };
    let total = datasets.len();

    let start = std::time::Instant::now();
    let campaign = Campaign::new(CampaignConfig {
        datasets,
        effort,
        seed,
        max_accuracy_loss: 0.05,
        accuracy_tier: if options.float_accuracy {
            pmlp_core::AccuracyTier::Float
        } else {
            pmlp_core::AccuracyTier::Integer
        },
        objectives: options.objectives.clone().unwrap_or_default(),
        store_dir: options.store.clone(),
        remote_store: options.remote_store.clone(),
        remote_timeout_ms: options.remote_timeout_ms,
        durability: options.durability.unwrap_or_default(),
        remote_cooldown_ms: None,
        resume: options.resume,
        worker: options.worker_options(),
    })
    .with_progress(move |report| {
        eprintln!(
            "[campaign] {:<14} done in {:>6.1}s  ({} evaluations, baseline {:.1}%)",
            report.name,
            report.elapsed_secs,
            report.evaluations,
            report.baseline_accuracy * 100.0,
        );
    });

    let (result, stats) = campaign.run_with_stats()?;
    println!("{}", render_campaign_table(&result));
    println!(
        "campaign over {} datasets finished in {:.1}s",
        total,
        start.elapsed().as_secs_f64()
    );
    if options.has_store() {
        println!(
            "persistence: {} dataset(s) resumed from markers, {} computed, \
             {} fresh evaluation(s)",
            stats.resumed.len(),
            stats.computed.len(),
            stats.fresh_evaluations
        );
        if let Some(worker) = &options.worker_id {
            println!(
                "worker {worker}: computed {:?}, stole {} expired lease(s){}",
                stats
                    .computed
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>(),
                stats.stolen.len(),
                if stats.stolen.is_empty() {
                    String::new()
                } else {
                    format!(
                        " ({:?})",
                        stats
                            .stolen
                            .iter()
                            .map(|d| d.to_string())
                            .collect::<Vec<_>>()
                    )
                }
            );
        }
    }

    let dir = Path::new("target")
        .join("experiment-results")
        .join("campaign");
    let paths = result.write_artifacts(&dir)?;
    println!("wrote {} artifacts under {}", paths.len(), dir.display());

    if options.require_warm && stats.fresh_evaluations > 0 {
        return Err(format!(
            "--require-warm: {} fresh evaluation(s) were needed (datasets recomputed: {:?})",
            stats.fresh_evaluations, stats.computed
        )
        .into());
    }
    Ok(())
}

/// `campaign gc`: garbage-collect a local store directory against the live
/// registry baselines.
fn run_gc(options: &CliOptions<'_>) -> Result<(), Box<dyn std::error::Error>> {
    let Some(dir) = &options.store else {
        return Err(
            "campaign gc needs --store DIR (remote stores are compacted \
                    server-side by running gc against the server's own directory)"
                .into(),
        );
    };
    let effort = options
        .effort
        .unwrap_or_else(|| parse_effort(options.positional.get(1).copied().unwrap_or("full")));
    let seed: u64 = options
        .positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // The live fingerprints are the trained registry baselines at this
    // effort/seed — training is exactly what a campaign run does first, so
    // gc's notion of "live" matches what the next campaign will warm-start.
    eprintln!(
        "[gc] training {} registry baselines ({effort:?}, seed {seed}) to learn live fingerprints",
        UciDataset::all().len()
    );
    // The baseline characterization cache in the same store makes repeated
    // gc runs (and the campaigns that follow) skip retraining entirely.
    let backend = options.open_backend()?;
    let live: Result<Vec<u64>, pmlp_core::CoreError> = UciDataset::all()
        .par_iter()
        .map(|&dataset| {
            Figure1Experiment::new(dataset, effort, seed)
                .build_engine_cached(backend.as_deref())
                .map(|engine| engine.fingerprint())
        })
        .collect();
    let live = live?;

    let report = EvalStore::gc(dir, &live, &GcPolicy::default())?;
    println!(
        "gc of {}: kept {} record log(s), dropped {} file(s), reclaimed {} byte(s), \
         merged {} duplicate record(s), dropped {} corrupt record(s)",
        dir.display(),
        report.files_kept,
        report.files_dropped,
        report.bytes_reclaimed,
        report.duplicates_merged,
        report.corrupt_dropped,
    );
    Ok(())
}
