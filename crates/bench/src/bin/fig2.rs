//! Regenerates Figure 2 of the paper: the accuracy-area trade-off of the
//! WhiteWine classifier when quantization, pruning and weight clustering are
//! combined by the hardware-aware genetic algorithm, compared against the
//! standalone techniques.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmlp-bench --bin fig2 -- \
//!     [dataset] [full|quick] [seed] [--quick] [--objectives LIST] \
//!     [--store DIR] [--remote-store URL] [--resume] [--require-warm] \
//!     [--worker-id ID] [--migration-interval N]
//! ```
//!
//! `--quick` anywhere on the command line forces the reduced CI effort.
//! `--objectives accuracy,area,energy` runs the GA (and reports the fronts)
//! in that objective space instead of the classic `(accuracy, area)` plane;
//! checkpoints are bound to the space, so changing it restarts the search.
//!
//! With `--store DIR` every evaluation persists into the crash-safe store
//! under `DIR` **and** the NSGA-II search checkpoints itself there after
//! every evaluation batch: an interrupted run re-invoked with `--resume`
//! picks the search up mid-generation and reproduces the uninterrupted
//! result exactly (without `--resume`, a stale checkpoint is discarded and
//! the search recomputes against the warm store). `--remote-store URL` adds
//! (or replaces the directory with) a shared `pmlp-serve` tier: evaluations
//! *and the GA checkpoint* replicate to the server, so another machine can
//! resume the search. `--require-warm` fails the run if any evaluation had
//! to be computed fresh.
//!
//! With `--worker-id ID` (plus a store) the GA runs as one **island** of a
//! distributed fleet: it checkpoints under a per-worker document name,
//! publishes its elite front to the store every `--migration-interval N`
//! generations (default 1) and folds in the fronts other islands published.
//! Start K processes with distinct ids against the same `--remote-store` to
//! search cooperatively; a single worker with no peers is bit-identical to
//! the classic checkpointed run.

use pmlp_bench::{parse_cli, parse_effort, persist_json, render_figure2, render_headline};
use pmlp_core::experiment::{headline_combined, Figure2Experiment};
use pmlp_data::UciDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_cli(&args);
    options.validate()?;
    let dataset = options
        .positional
        .first()
        .map(|name| UciDataset::parse(name))
        .transpose()?
        .unwrap_or(UciDataset::WhiteWine);
    let effort = options
        .effort
        .unwrap_or_else(|| parse_effort(options.positional.get(1).copied().unwrap_or("full")));
    let seed: u64 = options
        .positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let start = std::time::Instant::now();
    let mut experiment = Figure2Experiment::new(dataset, effort, seed);
    if let Some(space) = &options.objectives {
        experiment = experiment.with_objectives(space.clone());
    }
    // The backend doubles as the baseline characterization cache: a warm
    // store answers baseline training + synthesis with a single document
    // read (this is also what makes joining a fleet mid-run cheap).
    let backend = options.open_backend()?;
    let mut engine = experiment.build_engine_cached(backend.as_deref())?;
    if let Some(backend) = backend {
        engine = engine.with_backend(backend)?;
    }
    let result = if engine.store().is_some() {
        // Islands evolve distinct populations, so each fleet worker
        // checkpoints under its own name.
        let checkpoint = match &options.worker_id {
            Some(worker) => format!(
                "fig2_{}_{}_nsga2.json",
                dataset.to_string().to_lowercase(),
                worker
            ),
            None => format!("fig2_{}_nsga2.json", dataset.to_string().to_lowercase()),
        };
        // Without --resume, any existing checkpoint is discarded: the
        // search recomputes (against the warm store) instead of replaying.
        if !options.resume {
            engine
                .store()
                .expect("store attached")
                .remove_doc(&checkpoint)?;
        }
        match &options.worker_id {
            Some(worker) => experiment.run_distributed(
                &engine,
                &checkpoint,
                worker,
                options.migration_interval.unwrap_or(1),
            )?,
            None => experiment.run_with_checkpoint_doc(&engine, &checkpoint)?,
        }
    } else {
        experiment.run_with(&engine)?
    };
    println!("{}", render_figure2(&result));
    println!("{}", render_headline(&[headline_combined(&result, 0.05)]));
    let stats = engine.stats();
    if options.has_store() {
        println!(
            "store: {} entries warm-started, {} fresh evaluation(s)",
            stats.warmed, stats.misses
        );
    }
    println!("(elapsed: {:.1}s)", start.elapsed().as_secs_f64());
    persist_json(
        &format!("fig2_{}", dataset.to_string().to_lowercase()),
        &result,
    );
    if options.require_warm && stats.misses > 0 {
        return Err(format!(
            "--require-warm: {} fresh evaluation(s) were needed",
            stats.misses
        )
        .into());
    }
    Ok(())
}
