//! Regenerates Figure 2 of the paper: the accuracy-area trade-off of the
//! WhiteWine classifier when quantization, pruning and weight clustering are
//! combined by the hardware-aware genetic algorithm, compared against the
//! standalone techniques.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmlp-bench --bin fig2 -- [dataset] [full|quick] [seed] [--quick]
//! ```
//!
//! `--quick` anywhere on the command line forces the reduced CI effort.

use pmlp_bench::{parse_effort, persist_json, render_figure2, render_headline, split_cli_args};
use pmlp_core::experiment::{headline_combined, Figure2Experiment};
use pmlp_data::UciDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, effort_flag) = split_cli_args(&args);
    let dataset = positional
        .first()
        .map(|name| UciDataset::parse(name))
        .transpose()?
        .unwrap_or(UciDataset::WhiteWine);
    let effort =
        effort_flag.unwrap_or_else(|| parse_effort(positional.get(1).copied().unwrap_or("full")));
    let seed: u64 = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    let start = std::time::Instant::now();
    let result = Figure2Experiment::new(dataset, effort, seed).run()?;
    println!("{}", render_figure2(&result));
    println!("{}", render_headline(&[headline_combined(&result, 0.05)]));
    println!("(elapsed: {:.1}s)", start.elapsed().as_secs_f64());
    persist_json(
        &format!("fig2_{}", dataset.to_string().to_lowercase()),
        &result,
    );
    Ok(())
}
