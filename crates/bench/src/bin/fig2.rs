//! Regenerates Figure 2 of the paper: the accuracy-area trade-off of the
//! WhiteWine classifier when quantization, pruning and weight clustering are
//! combined by the hardware-aware genetic algorithm, compared against the
//! standalone techniques.
//!
//! Usage:
//!   cargo run --release -p pmlp-bench --bin fig2 -- [dataset] [full|quick] [seed]

use pmlp_bench::{parse_effort, persist_json, render_figure2, render_headline};
use pmlp_core::experiment::{headline_combined, Figure2Experiment};
use pmlp_data::UciDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let dataset = args
        .get(1)
        .map(|name| UciDataset::parse(name))
        .transpose()?
        .unwrap_or(UciDataset::WhiteWine);
    let effort = parse_effort(args.get(2).map(String::as_str).unwrap_or("full"));
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);

    let start = std::time::Instant::now();
    let result = Figure2Experiment::new(dataset, effort, seed).run()?;
    println!("{}", render_figure2(&result));
    println!("{}", render_headline(&[headline_combined(&result, 0.05)]));
    println!("(elapsed: {:.1}s)", start.elapsed().as_secs_f64());
    persist_json(&format!("fig2_{}", dataset.to_string().to_lowercase()), &result);
    Ok(())
}
