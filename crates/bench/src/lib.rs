//! Shared helpers of the benchmark harness: effort parsing, result printing
//! and JSON persistence used by both the figure-regeneration binaries and the
//! criterion benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use pmlp_core::experiment::{Effort, Figure1Result, Figure2Result};
use pmlp_core::report::{render_headline_table, HeadlineRow};
use std::path::{Path, PathBuf};

/// Parses an effort name from the command line (`full`, `quick`).
pub fn parse_effort(name: &str) -> Effort {
    match name.to_ascii_lowercase().as_str() {
        "quick" | "smoke" => Effort::Quick,
        _ => Effort::Full,
    }
}

/// Parsed command line shared by the figure/table/campaign binaries.
#[derive(Debug, Default)]
pub struct CliOptions<'a> {
    /// Positional arguments, in order.
    pub positional: Vec<&'a str>,
    /// Effort override from `--quick`/`-q`/`--full`.
    pub effort: Option<Effort>,
    /// Persistent evaluation-store directory from `--store DIR` (or
    /// `--store=DIR`): engines warm-start from it and append their misses,
    /// and searches checkpoint into it.
    pub store: Option<PathBuf>,
    /// Remote `pmlp-serve` URL from `--remote-store URL` (or
    /// `--remote-store=URL`). Combined with `--store DIR` the directory
    /// becomes a write-through cache of the server; alone, the server is the
    /// only persistence tier.
    pub remote_store: Option<String>,
    /// `--resume`: reuse completion markers and search checkpoints from the
    /// store directory instead of recomputing finished work.
    pub resume: bool,
    /// `--require-warm`: exit with an error if the run needed any fresh
    /// evaluation — CI's assertion that a store re-run recomputes nothing.
    pub require_warm: bool,
    /// `--float-accuracy`: score accuracies with the fake-quantized float
    /// model instead of the default pure-integer inference engine (an
    /// ablation/debugging opt-out; the two tiers agree on every registry
    /// dataset by the equivalence test suite).
    pub float_accuracy: bool,
    /// Objective space from `--objectives LIST` (or `--objectives=LIST`), a
    /// comma-separated subset of `accuracy,area,power,delay,energy`. `None`
    /// keeps the classic `(accuracy, area)` space — and byte-identical
    /// artifacts to the fixed two-objective pipeline.
    pub objectives: Option<pmlp_core::ObjectiveSpace>,
    /// Remote-store request timeout override in milliseconds from
    /// `--remote-timeout-ms N` (connect + read + write deadlines of every
    /// request to the `pmlp-serve` tier; default 10s).
    pub remote_timeout_ms: Option<u64>,
    /// Bearer token from `--token TOKEN`: the `serve` binary requires it on
    /// every request except the liveness probe. (Workers pass their token
    /// inline in the URL instead: `--remote-store http://TOKEN@host:port`.)
    pub token: Option<String>,
    /// Worker-pool size override for the `serve` binary from `--workers N`
    /// (default: one per core, clamped to 4..=32).
    pub workers: Option<usize>,
    /// Durability policy of the local JSONL tier from `--durability POLICY`
    /// (`buffered`, `sync-each-append` or `sync-on-seal`; default
    /// `buffered`). Honoured by `--store DIR` compositions and by the
    /// `serve` binary's disk-backed store.
    pub durability: Option<pmlp_core::store::DurabilityPolicy>,
    /// Graceful-shutdown drain deadline override for the `serve` binary
    /// from `--drain-timeout-ms N`: how long a stopping server waits for
    /// in-flight requests before abandoning them (default 5s).
    pub drain_timeout_ms: Option<u64>,
    /// Fleet identity from `--worker-id ID` (or `--worker-id=ID`): runs the
    /// campaign in lease-based work-stealing worker mode, and switches the
    /// Fig. 2 GA to island mode (per-worker checkpoint, elite migration
    /// through the store). Requires a persistence tier.
    pub worker_id: Option<String>,
    /// Island migration cadence in generations from `--migration-interval N`
    /// (default 1 when `--worker-id` is set).
    pub migration_interval: Option<usize>,
    /// `--steal`: allow this campaign worker to break another worker's
    /// *expired* lease and take over its dataset. Off by default — a
    /// non-stealing worker waits for the peer's completion marker instead.
    pub steal: bool,
    /// Campaign lease time-to-live override in milliseconds from
    /// `--lease-ttl-ms N` (default 30s; the holder renews at a third of it).
    pub lease_ttl_ms: Option<u64>,
    /// A malformed command line detected during parsing (e.g. `--store`
    /// without a directory); surfaced by [`CliOptions::validate`].
    pub parse_error: Option<String>,
}

impl CliOptions<'_> {
    /// Validates the parse and the flag combinations: `--resume`/
    /// `--require-warm` only make sense with a persistence tier (`--store`
    /// and/or `--remote-store`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed or invalid command
    /// lines.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(error) = &self.parse_error {
            return Err(error.clone());
        }
        if self.store.is_none() && self.remote_store.is_none() && (self.resume || self.require_warm)
        {
            return Err(
                "--resume/--require-warm need --store DIR and/or --remote-store URL".into(),
            );
        }
        if self.remote_timeout_ms == Some(0) {
            return Err("--remote-timeout-ms must be positive".into());
        }
        if self.workers == Some(0) {
            return Err("--workers must be positive".into());
        }
        if self.worker_id.is_some() && !self.has_store() {
            return Err("--worker-id needs --store DIR and/or --remote-store URL".into());
        }
        if self.worker_id.is_none()
            && (self.steal || self.migration_interval.is_some() || self.lease_ttl_ms.is_some())
        {
            return Err(
                "--steal/--migration-interval/--lease-ttl-ms only make sense with --worker-id"
                    .into(),
            );
        }
        if self.migration_interval == Some(0) {
            return Err("--migration-interval must be positive".into());
        }
        if self.lease_ttl_ms == Some(0) {
            return Err("--lease-ttl-ms must be positive".into());
        }
        Ok(())
    }

    /// Builds the campaign [`WorkerOptions`](pmlp_core::WorkerOptions) the
    /// parsed flags select, or `None` when `--worker-id` was not given.
    pub fn worker_options(&self) -> Option<pmlp_core::WorkerOptions> {
        let id = self.worker_id.as_ref()?;
        let mut worker = pmlp_core::WorkerOptions::new(id.clone()).with_steal(self.steal);
        if let Some(ttl) = self.lease_ttl_ms {
            worker.lease_ttl_ms = ttl;
        }
        Some(worker)
    }

    /// `true` when any persistence tier is configured.
    pub fn has_store(&self) -> bool {
        self.store.is_some() || self.remote_store.is_some()
    }

    /// Opens the [`StoreBackend`](pmlp_core::store::StoreBackend) the parsed
    /// flags select: local directory, remote server, their tiered
    /// composition, or `None` (see [`pmlp_core::store::open_backend`]).
    ///
    /// # Errors
    ///
    /// Propagates [`pmlp_core::CoreError::Store`] for an uncreatable
    /// directory or malformed URL.
    pub fn open_backend(
        &self,
    ) -> Result<Option<Box<dyn pmlp_core::store::StoreBackend>>, pmlp_core::CoreError> {
        pmlp_core::store::open_backend_durable(
            self.store.as_deref(),
            self.remote_store.as_deref(),
            self.remote_timeout_ms.map(std::time::Duration::from_millis),
            self.durability.unwrap_or_default(),
        )
    }
}

/// Parses the raw CLI arguments (excluding the program name) of the bench
/// binaries: positionals, the effort override and the persistence flags.
pub fn parse_cli(args: &[String]) -> CliOptions<'_> {
    let mut options = CliOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => options.effort = Some(Effort::Quick),
            "--full" => options.effort = Some(Effort::Full),
            "--store" => match iter.next() {
                // A following flag is a forgotten value, not a directory.
                Some(dir) if !dir.starts_with('-') => options.store = Some(PathBuf::from(dir)),
                _ => {
                    options.parse_error = Some("--store needs a directory argument".into());
                }
            },
            "--remote-store" => match iter.next() {
                Some(url) if !url.starts_with('-') => options.remote_store = Some(url.clone()),
                _ => {
                    options.parse_error = Some("--remote-store needs a URL argument".into());
                }
            },
            "--remote-timeout-ms" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => options.remote_timeout_ms = Some(ms),
                _ => {
                    options.parse_error =
                        Some("--remote-timeout-ms needs a number of milliseconds".into());
                }
            },
            "--token" => match iter.next() {
                Some(token) if !token.starts_with('-') => options.token = Some(token.clone()),
                _ => {
                    options.parse_error = Some("--token needs a token argument".into());
                }
            },
            "--workers" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => options.workers = Some(n),
                _ => {
                    options.parse_error = Some("--workers needs a thread count".into());
                }
            },
            "--durability" => match iter.next().map(|v| v.parse()) {
                Some(Ok(policy)) => options.durability = Some(policy),
                Some(Err(err)) => options.parse_error = Some(err),
                None => {
                    options.parse_error = Some("--durability needs a policy argument".into());
                }
            },
            "--drain-timeout-ms" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => options.drain_timeout_ms = Some(ms),
                _ => {
                    options.parse_error =
                        Some("--drain-timeout-ms needs a number of milliseconds".into());
                }
            },
            "--objectives" => match iter.next() {
                Some(list) if !list.starts_with('-') => {
                    match pmlp_core::ObjectiveSpace::parse(list) {
                        Ok(space) => options.objectives = Some(space),
                        Err(err) => options.parse_error = Some(err.to_string()),
                    }
                }
                _ => {
                    options.parse_error =
                        Some("--objectives needs a comma-separated objective list".into());
                }
            },
            "--worker-id" => match iter.next() {
                Some(id) if !id.starts_with('-') => options.worker_id = Some(id.clone()),
                _ => {
                    options.parse_error = Some("--worker-id needs an identifier argument".into());
                }
            },
            "--migration-interval" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => options.migration_interval = Some(n),
                _ => {
                    options.parse_error =
                        Some("--migration-interval needs a generation count".into());
                }
            },
            "--lease-ttl-ms" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => options.lease_ttl_ms = Some(ms),
                _ => {
                    options.parse_error =
                        Some("--lease-ttl-ms needs a number of milliseconds".into());
                }
            },
            "--steal" => options.steal = true,
            "--resume" => options.resume = true,
            "--require-warm" => options.require_warm = true,
            "--float-accuracy" => options.float_accuracy = true,
            other => {
                if let Some(dir) = other.strip_prefix("--store=") {
                    if dir.is_empty() {
                        options.parse_error = Some("--store= needs a non-empty directory".into());
                    } else {
                        options.store = Some(PathBuf::from(dir));
                    }
                } else if let Some(url) = other.strip_prefix("--remote-store=") {
                    if url.is_empty() {
                        options.parse_error = Some("--remote-store= needs a non-empty URL".into());
                    } else {
                        options.remote_store = Some(url.to_string());
                    }
                } else if let Some(ms) = other.strip_prefix("--remote-timeout-ms=") {
                    match ms.parse::<u64>() {
                        Ok(ms) => options.remote_timeout_ms = Some(ms),
                        Err(_) => {
                            options.parse_error =
                                Some("--remote-timeout-ms needs a number of milliseconds".into());
                        }
                    }
                } else if let Some(token) = other.strip_prefix("--token=") {
                    if token.is_empty() {
                        options.parse_error = Some("--token= needs a non-empty token".into());
                    } else {
                        options.token = Some(token.to_string());
                    }
                } else if let Some(n) = other.strip_prefix("--workers=") {
                    match n.parse::<usize>() {
                        Ok(n) => options.workers = Some(n),
                        Err(_) => {
                            options.parse_error = Some("--workers needs a thread count".into());
                        }
                    }
                } else if let Some(list) = other.strip_prefix("--objectives=") {
                    match pmlp_core::ObjectiveSpace::parse(list) {
                        Ok(space) => options.objectives = Some(space),
                        Err(err) => options.parse_error = Some(err.to_string()),
                    }
                } else if let Some(policy) = other.strip_prefix("--durability=") {
                    match policy.parse() {
                        Ok(policy) => options.durability = Some(policy),
                        Err(err) => options.parse_error = Some(err),
                    }
                } else if let Some(ms) = other.strip_prefix("--drain-timeout-ms=") {
                    match ms.parse::<u64>() {
                        Ok(ms) => options.drain_timeout_ms = Some(ms),
                        Err(_) => {
                            options.parse_error =
                                Some("--drain-timeout-ms needs a number of milliseconds".into());
                        }
                    }
                } else if let Some(id) = other.strip_prefix("--worker-id=") {
                    if id.is_empty() {
                        options.parse_error =
                            Some("--worker-id= needs a non-empty identifier".into());
                    } else {
                        options.worker_id = Some(id.to_string());
                    }
                } else if let Some(n) = other.strip_prefix("--migration-interval=") {
                    match n.parse::<usize>() {
                        Ok(n) => options.migration_interval = Some(n),
                        Err(_) => {
                            options.parse_error =
                                Some("--migration-interval needs a generation count".into());
                        }
                    }
                } else if let Some(ms) = other.strip_prefix("--lease-ttl-ms=") {
                    match ms.parse::<u64>() {
                        Ok(ms) => options.lease_ttl_ms = Some(ms),
                        Err(_) => {
                            options.parse_error =
                                Some("--lease-ttl-ms needs a number of milliseconds".into());
                        }
                    }
                } else {
                    options.positional.push(other);
                }
            }
        }
    }
    options
}

/// Splits raw CLI arguments (excluding the program name) into positional
/// arguments and an effort override: `--quick` (or `-q`) anywhere on the
/// command line forces [`Effort::Quick`], so CI can run the figure binaries
/// without paper-scale budgets regardless of positional defaults.
pub fn split_cli_args(args: &[String]) -> (Vec<&str>, Option<Effort>) {
    let options = parse_cli(args);
    (options.positional, options.effort)
}

/// Renders one Fig. 1 subplot as the text table the paper plots.
pub fn render_figure1(result: &Figure1Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Figure 1 ({}) — baseline accuracy {:.1}%, baseline area {:.1} mm2 ===\n",
        result.dataset,
        result.baseline_accuracy * 100.0,
        result.baseline_area_mm2
    ));
    for series in &result.series {
        out.push_str(&series.to_string());
    }
    out
}

/// Renders the Fig. 2 comparison (standalone fronts vs the combined GA front).
pub fn render_figure2(result: &Figure2Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Figure 2 ({}) — baseline accuracy {:.1}%, baseline area {:.1} mm2 ===\n",
        result.dataset,
        result.baseline_accuracy * 100.0,
        result.baseline_area_mm2
    ));
    for series in &result.standalone {
        out.push_str(&series.to_string());
    }
    out.push_str(&result.combined.to_string());
    out.push_str(&format!(
        "# GA: {} generations, {} evaluations\n",
        result.search.history.len(),
        result
            .search
            .history
            .last()
            .map(|h| h.evaluations)
            .unwrap_or(0)
    ));
    out
}

/// Renders headline rows.
pub fn render_headline(rows: &[HeadlineRow]) -> String {
    render_headline_table(rows)
}

/// Writes a serializable result next to the repository root (under
/// `target/experiment-results/`) so EXPERIMENTS.md can reference raw data.
///
/// Errors are printed rather than propagated: persisting results must never
/// fail a benchmark run.
pub fn persist_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = Path::new("target").join("experiment-results");
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {err}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(err) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {err}", path.display());
            }
        }
        Err(err) => eprintln!("warning: cannot serialize {name}: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_parsing_defaults_to_full() {
        assert_eq!(parse_effort("quick"), Effort::Quick);
        assert_eq!(parse_effort("SMOKE"), Effort::Quick);
        assert_eq!(parse_effort("full"), Effort::Full);
        assert_eq!(parse_effort("anything"), Effort::Full);
    }

    #[test]
    fn quick_flag_overrides_positionals() {
        let args: Vec<String> = ["seeds", "--quick", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (positional, effort) = split_cli_args(&args);
        assert_eq!(positional, vec!["seeds", "7"]);
        assert_eq!(effort, Some(Effort::Quick));

        let args: Vec<String> = ["seeds", "full"].iter().map(|s| s.to_string()).collect();
        let (positional, effort) = split_cli_args(&args);
        assert_eq!(positional, vec!["seeds", "full"]);
        assert_eq!(effort, None);
    }

    #[test]
    fn persistence_flags_are_parsed_in_both_forms() {
        let args: Vec<String> = ["all", "--store", "target/s", "--resume", "--require-warm"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli(&args);
        assert_eq!(options.positional, vec!["all"]);
        assert_eq!(options.store.as_deref(), Some(Path::new("target/s")));
        assert!(options.resume && options.require_warm);
        assert!(options.validate().is_ok());

        let args: Vec<String> = ["--store=target/other"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli(&args);
        assert_eq!(options.store.as_deref(), Some(Path::new("target/other")));

        let args: Vec<String> = ["--resume"].iter().map(|s| s.to_string()).collect();
        assert!(parse_cli(&args).validate().is_err(), "resume needs a store");
    }

    #[test]
    fn float_accuracy_flag_is_parsed() {
        let args: Vec<String> = ["all", "--float-accuracy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli(&args);
        assert!(options.float_accuracy);
        assert_eq!(options.positional, vec!["all"]);
        assert!(options.validate().is_ok());
        assert!(
            !parse_cli(&[]).float_accuracy,
            "defaults to integer scoring"
        );
    }

    #[test]
    fn objectives_flag_is_parsed_in_both_forms() {
        use pmlp_core::ObjectiveKind;
        let args: Vec<String> = ["all", "--objectives", "accuracy,area,energy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli(&args);
        let space = options.objectives.expect("parsed space");
        assert_eq!(
            space.objectives,
            vec![
                ObjectiveKind::AccuracyLoss,
                ObjectiveKind::Area,
                ObjectiveKind::EnergyPerInference
            ]
        );
        assert_eq!(options.positional, vec!["all"]);

        let args: Vec<String> = ["--objectives=accuracy,area,power,delay"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_cli(&args).objectives.unwrap().dim(), 4);
        assert!(parse_cli(&[]).objectives.is_none(), "defaults to classic");

        for bad in [
            vec!["--objectives"],
            vec!["--objectives", "--resume"],
            vec!["--objectives", "accuracy,sparkle"],
            vec!["--objectives", "accuracy,area,accuracy"],
            vec!["--objectives="],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                parse_cli(&args).validate().is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn remote_store_flags_are_parsed_in_both_forms() {
        let args: Vec<String> = ["all", "--remote-store", "http://127.0.0.1:7878"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli(&args);
        assert_eq!(
            options.remote_store.as_deref(),
            Some("http://127.0.0.1:7878")
        );
        assert!(options.has_store());
        assert!(options.validate().is_ok());

        let args: Vec<String> = ["--remote-store=http://h:1", "--require-warm"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli(&args);
        assert_eq!(options.remote_store.as_deref(), Some("http://h:1"));
        assert!(
            options.validate().is_ok(),
            "--require-warm works with a remote tier alone"
        );

        // Missing or empty URLs are parse errors.
        let args: Vec<String> = ["--remote-store"].iter().map(|s| s.to_string()).collect();
        assert!(parse_cli(&args).validate().is_err());
        let args: Vec<String> = ["--remote-store="].iter().map(|s| s.to_string()).collect();
        assert!(parse_cli(&args).validate().is_err());
        // A following flag is a forgotten value, not a URL.
        let args: Vec<String> = ["--remote-store", "--resume"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_cli(&args).validate().is_err());
    }

    #[test]
    fn serve_tier_flags_are_parsed_in_both_forms() {
        let args: Vec<String> = [
            "0.0.0.0:7878",
            "--token",
            "sekrit",
            "--workers",
            "8",
            "--remote-timeout-ms",
            "2500",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let options = parse_cli(&args);
        assert_eq!(options.positional, vec!["0.0.0.0:7878"]);
        assert_eq!(options.token.as_deref(), Some("sekrit"));
        assert_eq!(options.workers, Some(8));
        assert_eq!(options.remote_timeout_ms, Some(2500));
        assert!(options.validate().is_ok());

        let args: Vec<String> = ["--token=t0k", "--workers=4", "--remote-timeout-ms=100"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli(&args);
        assert_eq!(options.token.as_deref(), Some("t0k"));
        assert_eq!(options.workers, Some(4));
        assert_eq!(options.remote_timeout_ms, Some(100));

        // Missing values, non-numbers and zeros are rejected.
        for bad in [
            vec!["--token"],
            vec!["--workers", "lots"],
            vec!["--remote-timeout-ms"],
            vec!["--remote-timeout-ms", "soon"],
            vec!["--workers", "0"],
            vec!["--remote-timeout-ms", "0"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                parse_cli(&args).validate().is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn durability_flag_is_parsed_in_both_forms() {
        use pmlp_core::store::DurabilityPolicy;
        let args: Vec<String> = ["--store", "target/s", "--durability", "sync-each-append"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli(&args);
        assert_eq!(options.durability, Some(DurabilityPolicy::SyncEachAppend));
        assert!(options.validate().is_ok());

        let args: Vec<String> = ["--durability=sync-on-seal"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            parse_cli(&args).durability,
            Some(DurabilityPolicy::SyncOnSeal)
        );
        assert_eq!(parse_cli(&[]).durability, None, "defaults to buffered");

        for bad in [vec!["--durability"], vec!["--durability", "paranoid"]] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                parse_cli(&args).validate().is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn drain_timeout_flag_is_parsed_in_both_forms() {
        let args: Vec<String> = ["--drain-timeout-ms", "2500"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_cli(&args).drain_timeout_ms, Some(2500));

        let args: Vec<String> = ["--drain-timeout-ms=100"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_cli(&args).drain_timeout_ms, Some(100));
        assert_eq!(parse_cli(&[]).drain_timeout_ms, None);

        for bad in [
            vec!["--drain-timeout-ms"],
            vec!["--drain-timeout-ms", "soon"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                parse_cli(&args).validate().is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn worker_flags_are_parsed_in_both_forms() {
        let args: Vec<String> = [
            "all",
            "--store",
            "target/s",
            "--worker-id",
            "w1",
            "--steal",
            "--migration-interval",
            "3",
            "--lease-ttl-ms",
            "5000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let options = parse_cli(&args);
        assert_eq!(options.worker_id.as_deref(), Some("w1"));
        assert!(options.steal);
        assert_eq!(options.migration_interval, Some(3));
        assert_eq!(options.lease_ttl_ms, Some(5000));
        assert!(options.validate().is_ok());
        let worker = options.worker_options().expect("worker mode");
        assert_eq!(worker.id, "w1");
        assert!(worker.steal);
        assert_eq!(worker.lease_ttl_ms, 5000);

        let args: Vec<String> = [
            "--store=target/s",
            "--worker-id=w2",
            "--migration-interval=1",
            "--lease-ttl-ms=100",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let options = parse_cli(&args);
        assert_eq!(options.worker_id.as_deref(), Some("w2"));
        assert_eq!(options.migration_interval, Some(1));
        assert_eq!(options.lease_ttl_ms, Some(100));
        assert!(!options.steal, "stealing is opt-in");
        assert!(options.validate().is_ok());

        assert!(parse_cli(&[]).worker_options().is_none());
    }

    #[test]
    fn worker_flags_are_validated() {
        // --worker-id without a persistence tier is rejected.
        let args: Vec<String> = ["--worker-id", "w1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_cli(&args).validate().is_err());

        // Dependent flags without --worker-id are rejected.
        for bad in [
            vec!["--store", "target/s", "--steal"],
            vec!["--store", "target/s", "--migration-interval", "2"],
            vec!["--store", "target/s", "--lease-ttl-ms", "100"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                parse_cli(&args).validate().is_err(),
                "{bad:?} must be rejected"
            );
        }

        // Missing values, non-numbers and zeros are rejected.
        for bad in [
            vec!["--worker-id"],
            vec!["--worker-id", "--steal"],
            vec!["--worker-id="],
            vec!["--migration-interval", "soon"],
            vec!["--migration-interval="],
            vec!["--lease-ttl-ms", "soon"],
            vec![
                "--store",
                "target/s",
                "--worker-id",
                "w",
                "--migration-interval",
                "0",
            ],
            vec![
                "--store",
                "target/s",
                "--worker-id",
                "w",
                "--lease-ttl-ms",
                "0",
            ],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                parse_cli(&args).validate().is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn open_backend_composes_the_selected_tiers() {
        let dir = std::env::temp_dir().join(format!(
            "pmlp-bench-backend-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let options = CliOptions {
            store: Some(dir.clone()),
            remote_store: Some("http://127.0.0.1:7878".into()),
            ..CliOptions::default()
        };
        let backend = options.open_backend().unwrap().unwrap();
        assert!(backend.describe().starts_with("tiered"));
        assert!(CliOptions::default().open_backend().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_store_flags_are_rejected_not_swallowed() {
        // `--store` followed by another flag must not eat the flag as a path.
        let args: Vec<String> = ["all", "--store", "--resume"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_cli(&args);
        assert!(options.store.is_none());
        assert!(options.validate().is_err());

        // A trailing `--store` without a value is an error, not a silent
        // no-persistence run.
        let args: Vec<String> = ["all", "--quick", "--store"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_cli(&args).validate().is_err());

        let args: Vec<String> = ["--store="].iter().map(|s| s.to_string()).collect();
        assert!(parse_cli(&args).validate().is_err());
    }
}
