//! Shared helpers of the benchmark harness: effort parsing, result printing
//! and JSON persistence used by both the figure-regeneration binaries and the
//! criterion benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use pmlp_core::experiment::{Effort, Figure1Result, Figure2Result};
use pmlp_core::report::{render_headline_table, HeadlineRow};
use std::path::Path;

/// Parses an effort name from the command line (`full`, `quick`).
pub fn parse_effort(name: &str) -> Effort {
    match name.to_ascii_lowercase().as_str() {
        "quick" | "smoke" => Effort::Quick,
        _ => Effort::Full,
    }
}

/// Splits raw CLI arguments (excluding the program name) into positional
/// arguments and an effort override: `--quick` (or `-q`) anywhere on the
/// command line forces [`Effort::Quick`], so CI can run the figure binaries
/// without paper-scale budgets regardless of positional defaults.
pub fn split_cli_args(args: &[String]) -> (Vec<&str>, Option<Effort>) {
    let mut positional = Vec::new();
    let mut effort = None;
    for arg in args {
        match arg.as_str() {
            "--quick" | "-q" => effort = Some(Effort::Quick),
            "--full" => effort = Some(Effort::Full),
            other => positional.push(other),
        }
    }
    (positional, effort)
}

/// Renders one Fig. 1 subplot as the text table the paper plots.
pub fn render_figure1(result: &Figure1Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Figure 1 ({}) — baseline accuracy {:.1}%, baseline area {:.1} mm2 ===\n",
        result.dataset,
        result.baseline_accuracy * 100.0,
        result.baseline_area_mm2
    ));
    for series in &result.series {
        out.push_str(&series.to_string());
    }
    out
}

/// Renders the Fig. 2 comparison (standalone fronts vs the combined GA front).
pub fn render_figure2(result: &Figure2Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Figure 2 ({}) — baseline accuracy {:.1}%, baseline area {:.1} mm2 ===\n",
        result.dataset,
        result.baseline_accuracy * 100.0,
        result.baseline_area_mm2
    ));
    for series in &result.standalone {
        out.push_str(&series.to_string());
    }
    out.push_str(&result.combined.to_string());
    out.push_str(&format!(
        "# GA: {} generations, {} evaluations\n",
        result.search.history.len(),
        result
            .search
            .history
            .last()
            .map(|h| h.evaluations)
            .unwrap_or(0)
    ));
    out
}

/// Renders headline rows.
pub fn render_headline(rows: &[HeadlineRow]) -> String {
    render_headline_table(rows)
}

/// Writes a serializable result next to the repository root (under
/// `target/experiment-results/`) so EXPERIMENTS.md can reference raw data.
///
/// Errors are printed rather than propagated: persisting results must never
/// fail a benchmark run.
pub fn persist_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = Path::new("target").join("experiment-results");
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {err}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(err) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {err}", path.display());
            }
        }
        Err(err) => eprintln!("warning: cannot serialize {name}: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_parsing_defaults_to_full() {
        assert_eq!(parse_effort("quick"), Effort::Quick);
        assert_eq!(parse_effort("SMOKE"), Effort::Quick);
        assert_eq!(parse_effort("full"), Effort::Full);
        assert_eq!(parse_effort("anything"), Effort::Full);
    }

    #[test]
    fn quick_flag_overrides_positionals() {
        let args: Vec<String> = ["seeds", "--quick", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (positional, effort) = split_cli_args(&args);
        assert_eq!(positional, vec!["seeds", "7"]);
        assert_eq!(effort, Some(Effort::Quick));

        let args: Vec<String> = ["seeds", "full"].iter().map(|s| s.to_string()).collect();
        let (positional, effort) = split_cli_args(&args);
        assert_eq!(positional, vec!["seeds", "full"]);
        assert_eq!(effort, None);
    }
}
