//! Descriptors and generators for the UCI dataset battery used by the paper.
//!
//! Every descriptor records the real dataset's shape (features, classes,
//! original sample count) together with the parameters of the synthetic
//! Gaussian-mixture stand-in (scaled-down sample count and class overlap).
//! The MLP topologies follow the bespoke printed classifiers of
//! Mubarik et al. (MICRO 2020), which the paper uses as baselines.
//!
//! The registry covers the full cross-dataset battery the printed-ML
//! literature evaluates on: the four Fig. 1 tasks (WhiteWine, RedWine,
//! Pendigits, Seeds) plus eight more small classification tasks (Arrhythmia,
//! Balance, BreastCancer, Cardio, GasId, Vertebral, Mammographic, Har).
//! Very wide sensor datasets (Arrhythmia, GasId, Har) are modelled through a
//! reduced leading-feature subset — noted on each descriptor — so bespoke
//! circuit synthesis stays tractable; all other shapes match the real UCI
//! files.

use crate::error::DataError;
use crate::synth::{grid_centers, ClassSpec, GaussianMixtureSpec};
use pmlp_nn::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The classification tasks of the paper's cross-dataset battery.
///
/// The first four entries are the Fig. 1 subplots; the remainder completes
/// the battery the headline table and campaign runs sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UciDataset {
    /// White wine quality (11 physico-chemical features, quality grades).
    WhiteWine,
    /// Red wine quality (11 features, quality grades).
    RedWine,
    /// Pen-based handwritten digit recognition (16 features, 10 digits).
    Pendigits,
    /// Wheat-kernel geometry (7 features, 3 varieties).
    Seeds,
    /// Cardiac arrhythmia diagnosis (ECG; reduced 32-feature subset of the
    /// 279 recorded attributes, 5 merged rhythm classes).
    Arrhythmia,
    /// Balance-scale tip direction (4 features, 3 classes; the `B` class is
    /// rare).
    Balance,
    /// Breast Cancer Wisconsin diagnostic (30 cell-nucleus features,
    /// benign/malignant).
    BreastCancer,
    /// Cardiotocography fetal-state screening (21 features, 3 classes,
    /// heavily skewed towards `normal`).
    Cardio,
    /// Gas sensor array drift chemical identification (reduced 16-feature
    /// subset of the 128 sensor responses, 6 gases).
    GasId,
    /// Vertebral column pathology (6 biomechanical features, 3 classes).
    Vertebral,
    /// Mammographic mass severity (5 BI-RADS features, benign/malignant).
    Mammographic,
    /// Smartphone human-activity recognition (reduced 24-feature subset of
    /// the 561 engineered features, 6 activities).
    Har,
}

impl UciDataset {
    /// The full dataset registry, Fig. 1 tasks first, then the rest of the
    /// battery in the order the campaign reports them.
    pub fn all() -> [UciDataset; 12] {
        [
            UciDataset::WhiteWine,
            UciDataset::RedWine,
            UciDataset::Pendigits,
            UciDataset::Seeds,
            UciDataset::Arrhythmia,
            UciDataset::Balance,
            UciDataset::BreastCancer,
            UciDataset::Cardio,
            UciDataset::GasId,
            UciDataset::Vertebral,
            UciDataset::Mammographic,
            UciDataset::Har,
        ]
    }

    /// The four datasets plotted in Fig. 1, in subplot order.
    pub fn fig1() -> [UciDataset; 4] {
        [
            UciDataset::WhiteWine,
            UciDataset::RedWine,
            UciDataset::Pendigits,
            UciDataset::Seeds,
        ]
    }

    /// Parses a dataset name (case-insensitive), e.g. `whitewine`,
    /// `pendigits`, `breastcancer` or `gas-id`; every registry entry
    /// round-trips through its [`fmt::Display`] name.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] for unknown names.
    pub fn parse(name: &str) -> Result<Self, DataError> {
        match name.to_ascii_lowercase().as_str() {
            "whitewine" | "white_wine" | "white-wine" => Ok(UciDataset::WhiteWine),
            "redwine" | "red_wine" | "red-wine" => Ok(UciDataset::RedWine),
            "pendigits" => Ok(UciDataset::Pendigits),
            "seeds" => Ok(UciDataset::Seeds),
            "arrhythmia" => Ok(UciDataset::Arrhythmia),
            "balance" | "balance_scale" | "balance-scale" => Ok(UciDataset::Balance),
            "breastcancer" | "breast_cancer" | "breast-cancer" | "wdbc" => {
                Ok(UciDataset::BreastCancer)
            }
            "cardio" | "cardiotocography" => Ok(UciDataset::Cardio),
            "gasid" | "gas_id" | "gas-id" | "gas" => Ok(UciDataset::GasId),
            "vertebral" | "vertebral_column" | "vertebral-column" => Ok(UciDataset::Vertebral),
            "mammographic" | "mammographic_mass" | "mammographic-mass" => {
                Ok(UciDataset::Mammographic)
            }
            "har" | "human_activity" | "human-activity" => Ok(UciDataset::Har),
            other => Err(DataError::InvalidSpec {
                context: format!("unknown dataset '{other}'"),
            }),
        }
    }

    /// The descriptor (shape, synthetic parameters, baseline MLP topology) of
    /// this dataset.
    pub fn descriptor(self) -> DatasetDescriptor {
        match self {
            UciDataset::WhiteWine => DatasetDescriptor {
                dataset: self,
                name: "WhiteWine",
                feature_count: 11,
                class_count: 5,
                original_samples: 4898,
                synthetic_samples: 1500,
                class_weights: vec![0.03, 0.30, 0.45, 0.18, 0.04],
                class_std: 0.36,
                blobs_per_class: 2,
                hidden_neurons: 25,
                prototype_seed: SEED_WHITEWINE,
            },
            UciDataset::RedWine => DatasetDescriptor {
                dataset: self,
                name: "RedWine",
                feature_count: 11,
                class_count: 5,
                original_samples: 1599,
                synthetic_samples: 1200,
                class_weights: vec![0.04, 0.33, 0.40, 0.17, 0.06],
                class_std: 0.33,
                blobs_per_class: 2,
                hidden_neurons: 20,
                prototype_seed: SEED_REDWINE,
            },
            UciDataset::Pendigits => DatasetDescriptor {
                dataset: self,
                name: "Pendigits",
                feature_count: 16,
                class_count: 10,
                original_samples: 10992,
                synthetic_samples: 2000,
                class_weights: vec![0.1; 10],
                class_std: 0.14,
                blobs_per_class: 2,
                hidden_neurons: 30,
                prototype_seed: SEED_PENDIGITS,
            },
            UciDataset::Seeds => DatasetDescriptor {
                dataset: self,
                name: "Seeds",
                feature_count: 7,
                class_count: 3,
                original_samples: 210,
                synthetic_samples: 450,
                class_weights: vec![1.0 / 3.0; 3],
                class_std: 0.21,
                blobs_per_class: 1,
                hidden_neurons: 10,
                prototype_seed: SEED_SEEDS,
            },
            UciDataset::Arrhythmia => DatasetDescriptor {
                dataset: self,
                name: "Arrhythmia",
                feature_count: 32,
                class_count: 5,
                original_samples: 452,
                synthetic_samples: 900,
                class_weights: vec![0.54, 0.16, 0.12, 0.10, 0.08],
                class_std: 0.30,
                blobs_per_class: 2,
                hidden_neurons: 26,
                prototype_seed: SEED_ARRHYTHMIA,
            },
            UciDataset::Balance => DatasetDescriptor {
                dataset: self,
                name: "Balance",
                feature_count: 4,
                class_count: 3,
                original_samples: 625,
                synthetic_samples: 600,
                class_weights: vec![0.08, 0.46, 0.46],
                class_std: 0.16,
                blobs_per_class: 1,
                hidden_neurons: 12,
                prototype_seed: SEED_BALANCE,
            },
            UciDataset::BreastCancer => DatasetDescriptor {
                dataset: self,
                name: "BreastCancer",
                feature_count: 30,
                class_count: 2,
                original_samples: 569,
                synthetic_samples: 800,
                class_weights: vec![0.63, 0.37],
                class_std: 0.30,
                blobs_per_class: 2,
                hidden_neurons: 16,
                prototype_seed: SEED_BREASTCANCER,
            },
            UciDataset::Cardio => DatasetDescriptor {
                dataset: self,
                name: "Cardio",
                feature_count: 21,
                class_count: 3,
                original_samples: 2126,
                synthetic_samples: 1400,
                class_weights: vec![0.78, 0.14, 0.08],
                class_std: 0.28,
                blobs_per_class: 2,
                hidden_neurons: 20,
                prototype_seed: SEED_CARDIO,
            },
            UciDataset::GasId => DatasetDescriptor {
                dataset: self,
                name: "GasId",
                feature_count: 16,
                class_count: 6,
                original_samples: 13910,
                synthetic_samples: 1600,
                class_weights: vec![0.18, 0.16, 0.17, 0.20, 0.15, 0.14],
                class_std: 0.20,
                blobs_per_class: 2,
                hidden_neurons: 24,
                prototype_seed: SEED_GASID,
            },
            UciDataset::Vertebral => DatasetDescriptor {
                dataset: self,
                name: "Vertebral",
                feature_count: 6,
                class_count: 3,
                original_samples: 310,
                synthetic_samples: 500,
                class_weights: vec![0.32, 0.20, 0.48],
                class_std: 0.26,
                blobs_per_class: 1,
                hidden_neurons: 10,
                prototype_seed: SEED_VERTEBRAL,
            },
            UciDataset::Mammographic => DatasetDescriptor {
                dataset: self,
                name: "Mammographic",
                feature_count: 5,
                class_count: 2,
                original_samples: 961,
                synthetic_samples: 700,
                class_weights: vec![0.54, 0.46],
                class_std: 0.32,
                blobs_per_class: 1,
                hidden_neurons: 8,
                prototype_seed: SEED_MAMMOGRAPHIC,
            },
            UciDataset::Har => DatasetDescriptor {
                dataset: self,
                name: "Har",
                feature_count: 24,
                class_count: 6,
                original_samples: 10299,
                synthetic_samples: 1500,
                class_weights: vec![1.0 / 6.0; 6],
                class_std: 0.22,
                blobs_per_class: 2,
                hidden_neurons: 28,
                prototype_seed: SEED_HAR,
            },
        }
    }
}

/// Deterministic per-dataset prototype seed ("WhiteWine" as ASCII-ish value).
const SEED_WHITEWINE: u64 = 0x57_68_69_74_65;
/// Deterministic per-dataset prototype seed.
const SEED_REDWINE: u64 = 0x526564;
/// Deterministic per-dataset prototype seed.
const SEED_PENDIGITS: u64 = 0x50_65_6e;
/// Deterministic per-dataset prototype seed.
const SEED_SEEDS: u64 = 0x53656564;
/// Deterministic per-dataset prototype seed.
const SEED_ARRHYTHMIA: u64 = 0x4172_7268;
/// Deterministic per-dataset prototype seed.
const SEED_BALANCE: u64 = 0x42616c;
/// Deterministic per-dataset prototype seed.
const SEED_BREASTCANCER: u64 = 0x4272_4361;
/// Deterministic per-dataset prototype seed.
const SEED_CARDIO: u64 = 0x4361_7264;
/// Deterministic per-dataset prototype seed.
const SEED_GASID: u64 = 0x476173;
/// Deterministic per-dataset prototype seed.
const SEED_VERTEBRAL: u64 = 0x5665_7274;
/// Deterministic per-dataset prototype seed.
const SEED_MAMMOGRAPHIC: u64 = 0x4d616d;
/// Deterministic per-dataset prototype seed.
const SEED_HAR: u64 = 0x486172;

impl fmt::Display for UciDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.descriptor().name)
    }
}

/// Static description of one dataset: the real UCI shape plus the parameters
/// of its synthetic stand-in and the baseline MLP topology used by the paper.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DatasetDescriptor {
    /// Which dataset this describes.
    pub dataset: UciDataset,
    /// Human-readable name as used in the paper's figures.
    pub name: &'static str,
    /// Number of input features.
    pub feature_count: usize,
    /// Number of target classes.
    pub class_count: usize,
    /// Sample count of the real UCI dataset (for documentation).
    pub original_samples: usize,
    /// Sample count of the synthetic stand-in (scaled down for tractable GA
    /// evaluation; see DESIGN.md).
    pub synthetic_samples: usize,
    /// Relative class frequencies of the synthetic stand-in (sums to ~1).
    pub class_weights: Vec<f64>,
    /// Standard deviation of each class blob (feature space is `[0, 1]`), the
    /// knob controlling task difficulty.
    pub class_std: f32,
    /// Number of Gaussian blobs per class (multi-modal classes are harder).
    pub blobs_per_class: usize,
    /// Hidden-layer width of the baseline bespoke MLP (Mubarik et al. style).
    pub hidden_neurons: usize,
    /// Seed for the deterministic class-prototype layout.
    pub prototype_seed: u64,
}

impl serde::Deserialize for DatasetDescriptor {
    /// A descriptor is a pure function of its `dataset` field, so
    /// deserialization rebuilds it through [`UciDataset::descriptor`] (which
    /// also restores the `&'static str` name).
    fn deserialize_value(value: &serde::json::Value) -> Result<Self, serde::json::Error> {
        let dataset = UciDataset::deserialize_value(value.field("dataset")?)?;
        Ok(dataset.descriptor())
    }
}

impl DatasetDescriptor {
    /// Baseline MLP topology `[inputs, hidden, classes]` for this dataset.
    pub fn topology(&self) -> Vec<usize> {
        vec![self.feature_count, self.hidden_neurons, self.class_count]
    }

    /// Builds the Gaussian-mixture specification of the synthetic stand-in.
    pub fn mixture_spec(&self) -> GaussianMixtureSpec {
        let centers = grid_centers(
            self.class_count * self.blobs_per_class,
            self.feature_count,
            1.0,
            self.prototype_seed,
        );
        let classes = (0..self.class_count)
            .map(|c| {
                let samples = ((self.synthetic_samples as f64) * self.class_weights[c])
                    .round()
                    .max(2.0) as usize;
                let blob_centers: Vec<Vec<f32>> = (0..self.blobs_per_class)
                    .map(|b| centers[c * self.blobs_per_class + b].clone())
                    .collect();
                ClassSpec {
                    samples,
                    centers: blob_centers,
                    std_dev: self.class_std,
                }
            })
            .collect();
        GaussianMixtureSpec {
            feature_count: self.feature_count,
            classes,
        }
    }

    /// Generates the synthetic dataset with the given seed and normalizes all
    /// features to `[0, 1]` (the input format assumed by the bespoke-hardware
    /// input quantizer).
    ///
    /// # Errors
    ///
    /// Propagates [`DataError`] from the generator (only possible if the
    /// descriptor itself is inconsistent, which the tests guard against).
    pub fn generate(&self, seed: u64) -> Result<Dataset, DataError> {
        let mut rng = StdRng::seed_from_u64(seed ^ self.prototype_seed);
        let mut data = self.mixture_spec().generate(&mut rng)?;
        data.normalize_min_max();
        Ok(data)
    }
}

/// Convenience wrapper: generates the synthetic stand-in for `dataset` with
/// the given seed, features normalized to `[0, 1]`.
///
/// # Errors
///
/// Propagates [`DataError`] from generation.
///
/// # Example
///
/// ```
/// use pmlp_data::{load, UciDataset};
/// # fn main() -> Result<(), pmlp_data::DataError> {
/// let redwine = load(UciDataset::RedWine, 1)?;
/// assert_eq!(redwine.feature_count(), 11);
/// # Ok(())
/// # }
/// ```
pub fn load(dataset: UciDataset, seed: u64) -> Result<Dataset, DataError> {
    dataset.descriptor().generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_match_paper_shapes() {
        let shape = |d: UciDataset| {
            let desc = d.descriptor();
            (desc.feature_count, desc.class_count)
        };
        assert_eq!(shape(UciDataset::WhiteWine), (11, 5));
        assert_eq!(shape(UciDataset::RedWine), (11, 5));
        assert_eq!(shape(UciDataset::Pendigits), (16, 10));
        assert_eq!(shape(UciDataset::Seeds), (7, 3));
        assert_eq!(shape(UciDataset::Arrhythmia), (32, 5));
        assert_eq!(shape(UciDataset::Balance), (4, 3));
        assert_eq!(shape(UciDataset::BreastCancer), (30, 2));
        assert_eq!(shape(UciDataset::Cardio), (21, 3));
        assert_eq!(shape(UciDataset::GasId), (16, 6));
        assert_eq!(shape(UciDataset::Vertebral), (6, 3));
        assert_eq!(shape(UciDataset::Mammographic), (5, 2));
        assert_eq!(shape(UciDataset::Har), (24, 6));
    }

    #[test]
    fn registry_covers_the_paper_battery() {
        let all = UciDataset::all();
        assert!(all.len() >= 10, "registry must stay paper-scale");
        // No duplicates, and the Fig. 1 subset is a prefix of the registry.
        for (i, a) in all.iter().enumerate() {
            assert!(all.iter().skip(i + 1).all(|b| a != b), "{a} duplicated");
        }
        assert_eq!(UciDataset::fig1(), [all[0], all[1], all[2], all[3]]);
    }

    #[test]
    fn every_registry_entry_round_trips_its_display_name() {
        for d in UciDataset::all() {
            assert_eq!(UciDataset::parse(&d.to_string()).unwrap(), d, "{d}");
            assert_eq!(
                UciDataset::parse(&d.to_string().to_ascii_uppercase()).unwrap(),
                d,
                "{d} (uppercase)"
            );
        }
    }

    #[test]
    fn class_weights_sum_to_one() {
        for d in UciDataset::all() {
            let sum: f64 = d.descriptor().class_weights.iter().sum();
            assert!((sum - 1.0).abs() < 0.02, "{d}: class weights sum to {sum}");
        }
    }

    #[test]
    fn parse_accepts_all_names() {
        assert_eq!(
            UciDataset::parse("WhiteWine").unwrap(),
            UciDataset::WhiteWine
        );
        assert_eq!(UciDataset::parse("red-wine").unwrap(), UciDataset::RedWine);
        assert_eq!(
            UciDataset::parse("PENDIGITS").unwrap(),
            UciDataset::Pendigits
        );
        assert_eq!(UciDataset::parse("seeds").unwrap(), UciDataset::Seeds);
        assert_eq!(
            UciDataset::parse("breast-cancer").unwrap(),
            UciDataset::BreastCancer
        );
        assert_eq!(UciDataset::parse("gas").unwrap(), UciDataset::GasId);
        assert_eq!(
            UciDataset::parse("cardiotocography").unwrap(),
            UciDataset::Cardio
        );
        assert_eq!(
            UciDataset::parse("human-activity").unwrap(),
            UciDataset::Har
        );
        assert!(UciDataset::parse("iris").is_err());
    }

    #[test]
    fn generated_datasets_have_descriptor_shape() {
        for d in UciDataset::all() {
            let desc = d.descriptor();
            let data = desc.generate(7).unwrap();
            assert_eq!(data.feature_count(), desc.feature_count, "{d}");
            assert_eq!(data.class_count(), desc.class_count, "{d}");
            let total: usize = data.class_histogram().iter().sum();
            assert_eq!(total, data.len());
            // Every class must be represented.
            assert!(data.class_histogram().iter().all(|&c| c >= 2), "{d}");
        }
    }

    #[test]
    fn generation_is_deterministic_for_every_registry_entry() {
        for d in UciDataset::all() {
            let a = load(d, 3).unwrap();
            let b = load(d, 3).unwrap();
            assert_eq!(a, b, "{d}");
            let c = load(d, 4).unwrap();
            assert_ne!(a, c, "{d}");
        }
    }

    #[test]
    fn features_are_normalized_to_unit_interval() {
        let data = load(UciDataset::Pendigits, 5).unwrap();
        assert!(data
            .features()
            .as_slice()
            .iter()
            .all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn topology_matches_descriptor() {
        let d = UciDataset::WhiteWine.descriptor();
        assert_eq!(d.topology(), vec![11, d.hidden_neurons, 5]);
    }

    #[test]
    fn wine_datasets_are_imbalanced_pendigits_is_balanced() {
        let w = load(UciDataset::WhiteWine, 1).unwrap();
        let hist = w.class_histogram();
        assert!(hist.iter().max().unwrap() > &(2 * hist.iter().min().unwrap()));

        let p = load(UciDataset::Pendigits, 1).unwrap();
        let hist = p.class_histogram();
        let max = *hist.iter().max().unwrap() as f64;
        let min = *hist.iter().min().unwrap() as f64;
        assert!(max / min < 1.3);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(UciDataset::WhiteWine.to_string(), "WhiteWine");
        assert_eq!(UciDataset::Seeds.to_string(), "Seeds");
    }
}
