//! # pmlp-data — datasets for printed-MLP classification
//!
//! The DATE 2023 paper evaluates its minimization techniques on a battery of
//! small UCI classification tasks. This crate registers the full battery —
//! **WhiteWine**, **RedWine**, **Pendigits** and **Seeds** (the Fig. 1
//! subplots) plus **Arrhythmia**, **Balance**, **BreastCancer**, **Cardio**,
//! **GasId**, **Vertebral**, **Mammographic** and **Har** — as
//! [`UciDataset`] registry entries. This environment has no network access,
//! so every entry ships a deterministic *synthetic equivalent*: a seeded
//! Gaussian-mixture generator that reproduces the dataset's dimensionality,
//! class count, class imbalance and approximate difficulty (via controlled
//! class overlap), plus a CSV loader so the real UCI files can be dropped in
//! without code changes.
//!
//! The substitution is documented in `DESIGN.md`; every generator is seeded so
//! experiments are exactly reproducible.
//!
//! ## Example
//!
//! ```
//! use pmlp_data::{UciDataset, load};
//!
//! # fn main() -> Result<(), pmlp_data::DataError> {
//! let seeds = load(UciDataset::Seeds, 42)?;
//! assert_eq!(seeds.feature_count(), 7);
//! assert_eq!(seeds.class_count(), 3);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod error;
pub mod preprocess;
pub mod synth;
pub mod uci;

pub use error::DataError;
pub use pmlp_nn::Dataset;
pub use preprocess::{quantize_features, zscore_normalize};
pub use synth::{ClassSpec, GaussianMixtureSpec};
pub use uci::{load, DatasetDescriptor, UciDataset};
