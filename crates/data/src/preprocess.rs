//! Feature preprocessing beyond the min-max normalization built into
//! [`pmlp_nn::Dataset`]: z-score standardization and the uniform input
//! quantization used by the bespoke printed circuits.

use crate::error::DataError;
use pmlp_nn::Dataset;

/// Standardizes every feature to zero mean and unit variance in place and
/// returns the per-feature `(mean, std)` pairs so the same transform can be
/// applied to held-out data.
///
/// Features with zero variance are left at zero (after mean subtraction).
pub fn zscore_normalize(data: &mut Dataset) -> Vec<(f32, f32)> {
    let cols = data.feature_count();
    let rows = data.len();
    let mut stats = Vec::with_capacity(cols);
    for c in 0..cols {
        let features = data.features();
        let mean = features.column_iter(c).sum::<f32>() / rows as f32;
        let var = features
            .column_iter(c)
            .map(|x| (x - mean).powi(2))
            .sum::<f32>()
            / rows as f32;
        stats.push((mean, var.sqrt()));
    }
    apply_zscore(data, &stats);
    stats
}

/// Applies a previously computed z-score transform to `data`.
///
/// # Panics
///
/// Panics if `stats.len() != data.feature_count()`.
pub fn apply_zscore(data: &mut Dataset, stats: &[(f32, f32)]) {
    assert_eq!(stats.len(), data.feature_count(), "stat count mismatch");
    let cols = data.feature_count();
    let rows = data.len();
    // Work on a copy of the feature matrix through the public accessors.
    let mut new_rows: Vec<Vec<f32>> = Vec::with_capacity(rows);
    for r in 0..rows {
        let mut row = data.features().row(r).to_vec();
        for (c, value) in row.iter_mut().enumerate().take(cols) {
            let (mean, std) = stats[c];
            *value = if std > f32::EPSILON {
                (*value - mean) / std
            } else {
                0.0
            };
        }
        new_rows.push(row);
    }
    let labels = data.labels().to_vec();
    let classes = data.class_count();
    *data = Dataset::from_rows(new_rows, labels, classes).expect("shape preserved");
}

/// Quantizes every feature to an unsigned integer grid of `bits` bits over
/// `[0, 1]` and maps it back to `[0, 1]`, mirroring what the printed circuit's
/// input ADC/encoder delivers to the bespoke MLP.
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] when `bits` is 0 or greater than 16, or
/// when any feature lies outside `[0, 1]` (callers must min-max normalize
/// first).
pub fn quantize_features(data: &mut Dataset, bits: u8) -> Result<(), DataError> {
    if bits == 0 || bits > 16 {
        return Err(DataError::InvalidSpec {
            context: format!("input bits must be in 1..=16, got {bits}"),
        });
    }
    if data
        .features()
        .as_slice()
        .iter()
        .any(|&x| !(0.0..=1.0).contains(&x))
    {
        return Err(DataError::InvalidSpec {
            context: "features must be min-max normalized to [0,1] before quantization".into(),
        });
    }
    let levels = ((1u32 << bits) - 1) as f32;
    let rows = data.len();
    let mut new_rows: Vec<Vec<f32>> = Vec::with_capacity(rows);
    for r in 0..rows {
        let row: Vec<f32> = data
            .features()
            .row(r)
            .iter()
            .map(|&x| (x * levels).round() / levels)
            .collect();
        new_rows.push(row);
    }
    let labels = data.labels().to_vec();
    let classes = data.class_count();
    *data = Dataset::from_rows(new_rows, labels, classes).expect("shape preserved");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uci::{load, UciDataset};

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![vec![0.0, 10.0], vec![0.5, 20.0], vec![1.0, 30.0]],
            vec![0, 1, 0],
            2,
        )
        .unwrap()
    }

    #[test]
    fn zscore_gives_zero_mean_unit_variance() {
        let mut d = toy();
        zscore_normalize(&mut d);
        for c in 0..d.feature_count() {
            let col = d.features().column(c);
            let mean: f32 = col.iter().sum::<f32>() / col.len() as f32;
            let var: f32 = col.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / col.len() as f32;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn zscore_transform_is_reusable_on_new_data() {
        let mut train = toy();
        let stats = zscore_normalize(&mut train);
        let mut test = toy();
        apply_zscore(&mut test, &stats);
        assert_eq!(train, test);
    }

    #[test]
    fn zscore_handles_constant_feature() {
        let mut d =
            Dataset::from_rows(vec![vec![5.0, 1.0], vec![5.0, 2.0]], vec![0, 1], 2).unwrap();
        zscore_normalize(&mut d);
        assert_eq!(d.features().column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn quantize_rejects_unnormalized_features() {
        let mut d = toy(); // feature 1 ranges to 30.0
        assert!(quantize_features(&mut d, 4).is_err());
    }

    #[test]
    fn quantize_rejects_bad_bit_widths() {
        let mut d = load(UciDataset::Seeds, 1).unwrap();
        assert!(quantize_features(&mut d, 0).is_err());
        assert!(quantize_features(&mut d, 17).is_err());
    }

    #[test]
    fn quantize_snaps_to_grid() {
        let mut d = load(UciDataset::Seeds, 1).unwrap();
        quantize_features(&mut d, 4).unwrap();
        let levels = 15.0_f32;
        for &x in d.features().as_slice() {
            let scaled = x * levels;
            assert!(
                (scaled - scaled.round()).abs() < 1e-4,
                "{x} is not on the 4-bit grid"
            );
        }
    }

    #[test]
    fn one_bit_quantization_produces_binary_features() {
        let mut d = load(UciDataset::RedWine, 2).unwrap();
        quantize_features(&mut d, 1).unwrap();
        assert!(d
            .features()
            .as_slice()
            .iter()
            .all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let original = load(UciDataset::WhiteWine, 3).unwrap();
        let mut quantized = original.clone();
        quantize_features(&mut quantized, 6).unwrap();
        let step = 1.0 / 63.0_f32;
        for (a, b) in original
            .features()
            .as_slice()
            .iter()
            .zip(quantized.features().as_slice())
        {
            assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }
}
