//! Error type for dataset loading and generation.

use std::fmt;

/// Error returned by dataset generation, parsing and preprocessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// The generator or parser was configured inconsistently.
    InvalidSpec {
        /// Description of the inconsistency.
        context: String,
    },
    /// A CSV record could not be parsed.
    ParseCsv {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        context: String,
    },
    /// An underlying dataset construction error from `pmlp-nn`.
    Dataset {
        /// Description forwarded from [`pmlp_nn::NnError`].
        context: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidSpec { context } => {
                write!(f, "invalid dataset specification: {context}")
            }
            DataError::ParseCsv { line, context } => {
                write!(f, "csv parse error at line {line}: {context}")
            }
            DataError::Dataset { context } => write!(f, "dataset error: {context}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<pmlp_nn::NnError> for DataError {
    fn from(err: pmlp_nn::NnError) -> Self {
        DataError::Dataset {
            context: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_number() {
        let err = DataError::ParseCsv {
            line: 12,
            context: "bad float".into(),
        };
        assert!(err.to_string().contains("12"));
        assert!(err.to_string().contains("bad float"));
    }

    #[test]
    fn converts_nn_error() {
        let nn = pmlp_nn::NnError::InvalidDataset {
            context: "empty".into(),
        };
        let err: DataError = nn.into();
        assert!(matches!(err, DataError::Dataset { .. }));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DataError>();
    }
}
