//! Seeded Gaussian-mixture dataset generator.
//!
//! Each class is a mixture of one or more Gaussian "blobs" in feature space.
//! Class difficulty is controlled by how far apart the blob centres are
//! relative to their standard deviation: the UCI-equivalent descriptors in
//! [`crate::uci`] pick overlaps that lead to baseline MLP accuracies in the
//! same ballpark as the real datasets.

use crate::error::DataError;
use pmlp_nn::Dataset;
use rand::Rng;
use rand_distr_normal::sample_standard_normal;
use serde::{Deserialize, Serialize};

/// A single class of a [`GaussianMixtureSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Number of samples to generate for this class.
    pub samples: usize,
    /// Centres of the Gaussian blobs making up the class (each of length
    /// `feature_count`). Samples are spread evenly over the blobs.
    pub centers: Vec<Vec<f32>>,
    /// Per-feature standard deviation shared by all blobs of this class.
    pub std_dev: f32,
}

/// Full specification of a synthetic Gaussian-mixture classification dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixtureSpec {
    /// Number of input features.
    pub feature_count: usize,
    /// One [`ClassSpec`] per class, in class order.
    pub classes: Vec<ClassSpec>,
}

impl GaussianMixtureSpec {
    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] when there are no classes, a class
    /// has no samples or no centres, a centre has the wrong dimensionality, or
    /// a standard deviation is not positive and finite.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.feature_count == 0 {
            return Err(DataError::InvalidSpec {
                context: "feature_count must be > 0".into(),
            });
        }
        if self.classes.is_empty() {
            return Err(DataError::InvalidSpec {
                context: "at least one class is required".into(),
            });
        }
        for (ci, class) in self.classes.iter().enumerate() {
            if class.samples == 0 {
                return Err(DataError::InvalidSpec {
                    context: format!("class {ci} has zero samples"),
                });
            }
            if class.centers.is_empty() {
                return Err(DataError::InvalidSpec {
                    context: format!("class {ci} has no centers"),
                });
            }
            if !(class.std_dev > 0.0 && class.std_dev.is_finite()) {
                return Err(DataError::InvalidSpec {
                    context: format!("class {ci} std_dev must be positive, got {}", class.std_dev),
                });
            }
            for (bi, center) in class.centers.iter().enumerate() {
                if center.len() != self.feature_count {
                    return Err(DataError::InvalidSpec {
                        context: format!(
                            "class {ci} center {bi} has {} features, expected {}",
                            center.len(),
                            self.feature_count
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Total number of samples across all classes.
    pub fn total_samples(&self) -> usize {
        self.classes.iter().map(|c| c.samples).sum()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Generates the dataset using the supplied random-number generator.
    ///
    /// Samples are produced class by class and then left in that order; use
    /// [`Dataset::stratified_split`] or shuffled batching downstream.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] when [`GaussianMixtureSpec::validate`]
    /// fails.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Dataset, DataError> {
        self.validate()?;
        let mut features = Vec::with_capacity(self.total_samples());
        let mut labels = Vec::with_capacity(self.total_samples());
        for (class_index, class) in self.classes.iter().enumerate() {
            for s in 0..class.samples {
                let center = &class.centers[s % class.centers.len()];
                let mut row = Vec::with_capacity(self.feature_count);
                for &c in center {
                    row.push(c + class.std_dev * sample_standard_normal(rng));
                }
                features.push(row);
                labels.push(class_index);
            }
        }
        Ok(Dataset::from_rows(features, labels, self.classes.len())?)
    }
}

/// Minimal standard-normal sampling via Box–Muller, kept private to avoid a
/// dependency on `rand_distr`.
mod rand_distr_normal {
    use rand::Rng;

    /// Draws one sample from the standard normal distribution.
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        // Box–Muller transform; u1 is kept away from zero so ln() is finite.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

/// Places `class_count` well-separated class centres on a hyper-grid in
/// `[0, scale]^feature_count`, used by the UCI-equivalent descriptors to lay
/// out class prototypes deterministically.
pub fn grid_centers(
    class_count: usize,
    feature_count: usize,
    scale: f32,
    seed: u64,
) -> Vec<Vec<f32>> {
    // A small deterministic LCG keeps this function independent of the caller's
    // RNG so descriptors always produce identical prototypes.
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (u32::MAX >> 1) as f32).fract()
    };
    (0..class_count)
        .map(|c| {
            (0..feature_count)
                .map(|f| {
                    // Deterministic per-(class, feature) base plus jitter so
                    // different classes differ along many features at once.
                    let base = ((c * 2654435761 + f * 40503) % 97) as f32 / 97.0;
                    (base * 0.8 + 0.2 * next()) * scale
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blob_spec() -> GaussianMixtureSpec {
        GaussianMixtureSpec {
            feature_count: 2,
            classes: vec![
                ClassSpec {
                    samples: 50,
                    centers: vec![vec![0.0, 0.0]],
                    std_dev: 0.1,
                },
                ClassSpec {
                    samples: 70,
                    centers: vec![vec![5.0, 5.0]],
                    std_dev: 0.1,
                },
            ],
        }
    }

    #[test]
    fn generate_produces_requested_counts() {
        let spec = two_blob_spec();
        let data = spec.generate(&mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(data.len(), 120);
        assert_eq!(data.class_histogram(), vec![50, 70]);
        assert_eq!(data.feature_count(), 2);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let spec = two_blob_spec();
        let a = spec.generate(&mut StdRng::seed_from_u64(9)).unwrap();
        let b = spec.generate(&mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = two_blob_spec();
        let a = spec.generate(&mut StdRng::seed_from_u64(1)).unwrap();
        let b = spec.generate(&mut StdRng::seed_from_u64(2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn well_separated_classes_are_linearly_separable() {
        let spec = two_blob_spec();
        let data = spec.generate(&mut StdRng::seed_from_u64(5)).unwrap();
        // A trivial threshold on feature 0 at 2.5 should classify perfectly.
        let correct = (0..data.len())
            .filter(|&i| {
                let pred = usize::from(data.features().get(i, 0) > 2.5);
                pred == data.labels()[i]
            })
            .count();
        assert_eq!(correct, data.len());
    }

    #[test]
    fn overlapping_classes_are_not_trivially_separable() {
        let spec = GaussianMixtureSpec {
            feature_count: 2,
            classes: vec![
                ClassSpec {
                    samples: 200,
                    centers: vec![vec![0.0, 0.0]],
                    std_dev: 2.0,
                },
                ClassSpec {
                    samples: 200,
                    centers: vec![vec![1.0, 1.0]],
                    std_dev: 2.0,
                },
            ],
        };
        let data = spec.generate(&mut StdRng::seed_from_u64(3)).unwrap();
        let correct = (0..data.len())
            .filter(|&i| {
                let pred = usize::from(data.features().get(i, 0) > 0.5);
                pred == data.labels()[i]
            })
            .count();
        let acc = correct as f64 / data.len() as f64;
        assert!(
            acc < 0.95,
            "overlapping blobs were separable with accuracy {acc}"
        );
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = two_blob_spec();
        spec.classes[0].samples = 0;
        assert!(spec.validate().is_err());

        let mut spec = two_blob_spec();
        spec.classes[0].std_dev = -1.0;
        assert!(spec.validate().is_err());

        let mut spec = two_blob_spec();
        spec.classes[0].centers[0] = vec![0.0];
        assert!(spec.validate().is_err());

        let spec = GaussianMixtureSpec {
            feature_count: 0,
            classes: vec![],
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn multi_blob_classes_use_all_centers() {
        let spec = GaussianMixtureSpec {
            feature_count: 1,
            classes: vec![ClassSpec {
                samples: 100,
                centers: vec![vec![-10.0], vec![10.0]],
                std_dev: 0.1,
            }],
        };
        let data = spec.generate(&mut StdRng::seed_from_u64(7)).unwrap();
        let negatives = (0..data.len())
            .filter(|&i| data.features().get(i, 0) < 0.0)
            .count();
        assert_eq!(negatives, 50);
    }

    #[test]
    fn grid_centers_are_deterministic_and_distinct() {
        let a = grid_centers(4, 6, 1.0, 11);
        let b = grid_centers(4, 6, 1.0, 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|c| c.len() == 6));
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn standard_normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f32> = (0..n)
            .map(|_| super::rand_distr_normal::sample_standard_normal(&mut rng))
            .collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn generated_dataset_matches_spec_shape(
            samples_a in 1usize..40,
            samples_b in 1usize..40,
            features in 1usize..8,
            seed in 0u64..500
        ) {
            let spec = GaussianMixtureSpec {
                feature_count: features,
                classes: vec![
                    ClassSpec { samples: samples_a, centers: vec![vec![0.0; features]], std_dev: 0.5 },
                    ClassSpec { samples: samples_b, centers: vec![vec![1.0; features]], std_dev: 0.5 },
                ],
            };
            let data = spec.generate(&mut StdRng::seed_from_u64(seed)).unwrap();
            prop_assert_eq!(data.len(), samples_a + samples_b);
            prop_assert_eq!(data.feature_count(), features);
            prop_assert_eq!(data.class_count(), 2);
            prop_assert!(data.features().as_slice().iter().all(|x| x.is_finite()));
        }
    }
}
