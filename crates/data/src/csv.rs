//! Minimal CSV reader/writer so the real UCI files can be dropped in.
//!
//! The UCI wine and seeds files use `;`- or whitespace-separated numeric
//! columns with the class label in the last column; this module parses that
//! family of formats without pulling in an external CSV dependency.

use crate::error::DataError;
use pmlp_nn::Dataset;
use std::collections::BTreeMap;

/// Options controlling CSV parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvOptions {
    /// Field separator (`,`, `;`, `\t`, ...).
    pub separator: char,
    /// Skip the first line (header row).
    pub has_header: bool,
    /// Column index of the class label; `None` means the last column.
    pub label_column: Option<usize>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            has_header: false,
            label_column: None,
        }
    }
}

/// Parses CSV text into a [`Dataset`].
///
/// Labels may be arbitrary numeric or string values; they are mapped to dense
/// class indices `0..k` in order of first appearance sorted lexicographically,
/// so the mapping is stable across runs.
///
/// # Errors
///
/// Returns [`DataError::ParseCsv`] for malformed rows and
/// [`DataError::InvalidSpec`] when the text contains no data rows.
///
/// # Example
///
/// ```
/// use pmlp_data::csv::{parse_csv, CsvOptions};
///
/// # fn main() -> Result<(), pmlp_data::DataError> {
/// let text = "1.0;2.0;good\n3.0;4.0;bad\n";
/// let data = parse_csv(text, &CsvOptions { separator: ';', ..CsvOptions::default() })?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.feature_count(), 2);
/// assert_eq!(data.class_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_csv(text: &str, options: &CsvOptions) -> Result<Dataset, DataError> {
    let mut rows: Vec<(Vec<f32>, String)> = Vec::new();
    let mut expected_fields: Option<usize> = None;

    for (line_index, raw_line) in text.lines().enumerate() {
        let line_no = line_index + 1;
        if options.has_header && line_index == 0 {
            continue;
        }
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = if options.separator == ' ' {
            line.split_whitespace().collect()
        } else {
            line.split(options.separator).map(str::trim).collect()
        };
        if fields.len() < 2 {
            return Err(DataError::ParseCsv {
                line: line_no,
                context: format!("expected at least 2 fields, got {}", fields.len()),
            });
        }
        if let Some(expected) = expected_fields {
            if fields.len() != expected {
                return Err(DataError::ParseCsv {
                    line: line_no,
                    context: format!("expected {expected} fields, got {}", fields.len()),
                });
            }
        } else {
            expected_fields = Some(fields.len());
        }
        let label_col = options.label_column.unwrap_or(fields.len() - 1);
        if label_col >= fields.len() {
            return Err(DataError::ParseCsv {
                line: line_no,
                context: format!("label column {label_col} out of range"),
            });
        }
        let mut features = Vec::with_capacity(fields.len() - 1);
        for (i, field) in fields.iter().enumerate() {
            if i == label_col {
                continue;
            }
            let value: f32 = field.parse().map_err(|_| DataError::ParseCsv {
                line: line_no,
                context: format!("cannot parse '{field}' as a number"),
            })?;
            features.push(value);
        }
        rows.push((features, fields[label_col].to_string()));
    }

    if rows.is_empty() {
        return Err(DataError::InvalidSpec {
            context: "csv contains no data rows".into(),
        });
    }

    // Stable label -> class-index mapping (lexicographic order).
    let mut label_map: BTreeMap<String, usize> = BTreeMap::new();
    for (_, label) in &rows {
        let next = label_map.len();
        label_map.entry(label.clone()).or_insert(next);
    }
    // Re-assign indices in sorted key order so the mapping is lexicographic.
    for (i, (_, v)) in label_map.iter_mut().enumerate() {
        *v = i;
    }

    let class_count = label_map.len();
    let labels: Vec<usize> = rows.iter().map(|(_, l)| label_map[l]).collect();
    // Move the parsed feature rows into the dataset instead of cloning them.
    let features: Vec<Vec<f32>> = rows.into_iter().map(|(f, _)| f).collect();
    Ok(Dataset::from_rows(features, labels, class_count)?)
}

/// Serializes a dataset to CSV text (features then label per row) using the
/// given separator. The inverse of [`parse_csv`] up to label renaming.
pub fn to_csv(data: &Dataset, separator: char) -> String {
    let mut out = String::new();
    for (row, &label) in data.features().iter_rows().zip(data.labels()) {
        let mut fields: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        fields.push(label.to_string());
        out.push_str(&fields.join(&separator.to_string()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_semicolon_separated_wine_style_csv() {
        let text = "fixed;volatile;quality\n7.0;0.27;6\n6.3;0.30;6\n8.1;0.28;5\n";
        let opts = CsvOptions {
            separator: ';',
            has_header: true,
            label_column: None,
        };
        let data = parse_csv(text, &opts).unwrap();
        assert_eq!(data.len(), 3);
        assert_eq!(data.feature_count(), 2);
        assert_eq!(data.class_count(), 2);
    }

    #[test]
    fn parses_whitespace_separated_seeds_style_data() {
        let text = "15.26 14.84 0.871 1\n14.88 14.57 0.881 1\n13.84 13.94 0.895 2\n";
        let opts = CsvOptions {
            separator: ' ',
            has_header: false,
            label_column: None,
        };
        let data = parse_csv(text, &opts).unwrap();
        assert_eq!(data.len(), 3);
        assert_eq!(data.feature_count(), 3);
        assert_eq!(data.class_count(), 2);
    }

    #[test]
    fn label_column_override_works() {
        let text = "a,1.0,2.0\nb,3.0,4.0\n";
        let opts = CsvOptions {
            separator: ',',
            has_header: false,
            label_column: Some(0),
        };
        let data = parse_csv(text, &opts).unwrap();
        assert_eq!(data.feature_count(), 2);
        assert_eq!(data.labels(), &[0, 1]);
    }

    #[test]
    fn rejects_malformed_numbers_with_line_number() {
        let text = "1.0,2.0,0\noops,4.0,1\n";
        let err = parse_csv(text, &CsvOptions::default()).unwrap_err();
        match err {
            DataError::ParseCsv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_inconsistent_field_counts() {
        let text = "1.0,2.0,0\n1.0,1\n";
        assert!(matches!(
            parse_csv(text, &CsvOptions::default()),
            Err(DataError::ParseCsv { .. })
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_csv("", &CsvOptions::default()).is_err());
        assert!(parse_csv("\n\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn label_mapping_is_lexicographic_and_stable() {
        let text = "1.0,zebra\n2.0,apple\n3.0,zebra\n";
        let data = parse_csv(text, &CsvOptions::default()).unwrap();
        // "apple" < "zebra" lexicographically, so apple -> 0, zebra -> 1.
        assert_eq!(data.labels(), &[1, 0, 1]);
    }

    #[test]
    fn round_trip_through_to_csv() {
        let text = "1.0,2.0,0\n3.0,4.0,1\n";
        let data = parse_csv(text, &CsvOptions::default()).unwrap();
        let serialized = to_csv(&data, ',');
        let reparsed = parse_csv(&serialized, &CsvOptions::default()).unwrap();
        assert_eq!(reparsed.len(), data.len());
        assert_eq!(reparsed.labels(), data.labels());
        for (a, b) in reparsed
            .features()
            .as_slice()
            .iter()
            .zip(data.features().as_slice())
        {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn skips_blank_lines() {
        let text = "1.0,0\n\n2.0,1\n\n";
        let data = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(data.len(), 2);
    }
}
