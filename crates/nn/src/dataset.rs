//! In-memory labelled dataset used by the trainer and by evaluation.

use crate::error::NnError;
use crate::matrix::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labelled classification dataset: a feature matrix (one sample per row)
/// and one class index per sample.
///
/// # Example
///
/// ```
/// use pmlp_nn::Dataset;
///
/// # fn main() -> Result<(), pmlp_nn::NnError> {
/// let xs = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]];
/// let ys = vec![0, 1, 0];
/// let data = Dataset::from_rows(xs, ys, 2)?;
/// assert_eq!(data.len(), 3);
/// assert_eq!(data.feature_count(), 2);
/// assert_eq!(data.class_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    class_count: usize,
}

impl Dataset {
    /// Builds a dataset from per-sample feature rows and labels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidDataset`] when the dataset is empty, when the
    /// number of labels does not match the number of rows, or when a label is
    /// `>= class_count`.
    pub fn from_rows(
        features: Vec<Vec<f32>>,
        labels: Vec<usize>,
        class_count: usize,
    ) -> Result<Self, NnError> {
        let features = Matrix::from_rows(&features).map_err(|e| NnError::InvalidDataset {
            context: format!("features: {e}"),
        })?;
        Dataset::new(features, labels, class_count)
    }

    /// Builds a dataset from an existing feature matrix and labels.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dataset::from_rows`].
    pub fn new(features: Matrix, labels: Vec<usize>, class_count: usize) -> Result<Self, NnError> {
        if features.rows() == 0 {
            return Err(NnError::InvalidDataset {
                context: "dataset has no samples".into(),
            });
        }
        if labels.len() != features.rows() {
            return Err(NnError::InvalidDataset {
                context: format!("{} labels for {} samples", labels.len(), features.rows()),
            });
        }
        if class_count == 0 {
            return Err(NnError::InvalidDataset {
                context: "class_count must be non-zero".into(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= class_count) {
            return Err(NnError::InvalidDataset {
                context: format!("label {bad} out of range for {class_count} classes"),
            });
        }
        Ok(Dataset {
            features,
            labels,
            class_count,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// `true` when the dataset has no samples (never true for a constructed
    /// dataset, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of input features per sample.
    pub fn feature_count(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// The full feature matrix (samples x features).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The label of every sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of samples belonging to each class.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.class_count];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }

    /// Returns a new dataset containing only the samples at `indices`
    /// (duplicates allowed, order preserved).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            class_count: self.class_count,
        }
    }

    /// Splits the dataset into a training and a test partition with
    /// `train_fraction` of the samples (rounded down, at least one sample in
    /// each partition) going to the training set. Sampling is stratified per
    /// class so both partitions keep the original class balance.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when `train_fraction` is not in
    /// `(0, 1)` or the dataset is too small to give both partitions a sample.
    pub fn stratified_split<R: Rng + ?Sized>(
        &self,
        train_fraction: f64,
        rng: &mut R,
    ) -> Result<(Dataset, Dataset), NnError> {
        if !(train_fraction > 0.0 && train_fraction < 1.0) {
            return Err(NnError::InvalidConfig {
                context: format!("train_fraction must be in (0,1), got {train_fraction}"),
            });
        }
        if self.len() < 2 {
            return Err(NnError::InvalidConfig {
                context: "cannot split a dataset with fewer than 2 samples".into(),
            });
        }
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for class in 0..self.class_count {
            let mut members: Vec<usize> = (0..self.len())
                .filter(|&i| self.labels[i] == class)
                .collect();
            members.shuffle(rng);
            let n_train = ((members.len() as f64) * train_fraction).round() as usize;
            let n_train = n_train.min(members.len());
            train_idx.extend_from_slice(&members[..n_train]);
            test_idx.extend_from_slice(&members[n_train..]);
        }
        // Guarantee both partitions are non-empty.
        if train_idx.is_empty() {
            train_idx.push(test_idx.pop().expect("dataset has at least 2 samples"));
        }
        if test_idx.is_empty() {
            test_idx.push(train_idx.pop().expect("dataset has at least 2 samples"));
        }
        train_idx.shuffle(rng);
        test_idx.shuffle(rng);
        Ok((self.subset(&train_idx), self.subset(&test_idx)))
    }

    /// Returns shuffled mini-batch index chunks covering the whole dataset.
    ///
    /// Allocates one `Vec` per batch; the training hot path uses
    /// [`Dataset::shuffle_indices_into`] + [`Dataset::gather_batch`] instead,
    /// which reuse caller-owned buffers across batches and epochs.
    pub fn batch_indices<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<Vec<usize>> {
        let batch_size = batch_size.max(1);
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices.chunks(batch_size).map(|c| c.to_vec()).collect()
    }

    /// Fills `indices` with a fresh shuffled permutation of `0..len`, reusing
    /// the buffer's allocation. Chunking the result yields one epoch's
    /// mini-batches without any further allocation.
    pub fn shuffle_indices_into<R: Rng + ?Sized>(&self, indices: &mut Vec<usize>, rng: &mut R) {
        indices.clear();
        indices.extend(0..self.len());
        indices.shuffle(rng);
    }

    /// Gathers the samples at `indices` into caller-owned buffers: `features`
    /// is resized only when the batch geometry changes (the final short batch
    /// of an epoch), `labels` is cleared and refilled. This is the
    /// allocation-free batch path used by the trainer; it borrows the feature
    /// matrix instead of copying `Vec<Vec<f32>>` rows around.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of bounds.
    pub fn gather_batch(&self, indices: &[usize], features: &mut Matrix, labels: &mut Vec<usize>) {
        if features.shape() != (indices.len(), self.feature_count()) {
            *features = Matrix::zeros(indices.len(), self.feature_count());
        }
        features.copy_rows_from(&self.features, indices);
        labels.clear();
        labels.extend(indices.iter().map(|&i| self.labels[i]));
    }

    /// Applies min-max normalization per feature, mapping every feature to
    /// `[0, 1]`. Returns the per-feature `(min, max)` pairs so the same
    /// transform can be applied to unseen data (e.g. the test split).
    pub fn normalize_min_max(&mut self) -> Vec<(f32, f32)> {
        let cols = self.feature_count();
        let mut ranges = Vec::with_capacity(cols);
        for c in 0..cols {
            let (min, max) = self
                .features
                .column_iter(c)
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(min, max), v| {
                    (min.min(v), max.max(v))
                });
            ranges.push((min, max));
        }
        self.apply_min_max(&ranges);
        ranges
    }

    /// Applies a previously computed min-max transform (from
    /// [`Dataset::normalize_min_max`]) to this dataset.
    ///
    /// Features whose range is degenerate (`max == min`) map to `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `ranges.len() != self.feature_count()`.
    pub fn apply_min_max(&mut self, ranges: &[(f32, f32)]) {
        assert_eq!(ranges.len(), self.feature_count(), "range count mismatch");
        for r in 0..self.features.rows() {
            for (c, &(min, max)) in ranges.iter().enumerate() {
                let denom = max - min;
                let v = self.features.get(r, c);
                let scaled = if denom.abs() < f32::EPSILON {
                    0.0
                } else {
                    (v - min) / denom
                };
                self.features.set(r, c, scaled.clamp(0.0, 1.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n_per_class: usize, classes: usize) -> Dataset {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in 0..classes {
            for i in 0..n_per_class {
                xs.push(vec![c as f32 * 10.0 + i as f32, i as f32]);
                ys.push(c);
            }
        }
        Dataset::from_rows(xs, ys, classes).unwrap()
    }

    #[test]
    fn construction_validates_labels() {
        let xs = vec![vec![1.0], vec![2.0]];
        assert!(Dataset::from_rows(xs.clone(), vec![0], 2).is_err());
        assert!(Dataset::from_rows(xs.clone(), vec![0, 5], 2).is_err());
        assert!(Dataset::from_rows(xs, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn class_histogram_counts_every_class() {
        let d = toy(5, 3);
        assert_eq!(d.class_histogram(), vec![5, 5, 5]);
    }

    #[test]
    fn subset_preserves_labels_and_order() {
        let d = toy(3, 2);
        let s = d.subset(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[1, 0]);
        assert_eq!(s.features().row(0), d.features().row(4));
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let d = toy(40, 3);
        let mut rng = StdRng::seed_from_u64(13);
        let (train, test) = d.stratified_split(0.75, &mut rng).unwrap();
        assert_eq!(train.len() + test.len(), d.len());
        for hist in [train.class_histogram(), test.class_histogram()] {
            let max = *hist.iter().max().unwrap();
            let min = *hist.iter().min().unwrap();
            assert!(max - min <= 1, "imbalanced split: {hist:?}");
        }
    }

    #[test]
    fn stratified_split_rejects_bad_fraction() {
        let d = toy(4, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(d.stratified_split(0.0, &mut rng).is_err());
        assert!(d.stratified_split(1.0, &mut rng).is_err());
        assert!(d.stratified_split(-0.5, &mut rng).is_err());
    }

    #[test]
    fn batch_indices_cover_all_samples_exactly_once() {
        let d = toy(10, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let batches = d.batch_indices(7, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn gather_batch_matches_subset() {
        let d = toy(5, 2);
        let mut features = Matrix::zeros(0, d.feature_count());
        let mut labels = Vec::new();
        d.gather_batch(&[7, 1, 4], &mut features, &mut labels);
        let subset = d.subset(&[7, 1, 4]);
        assert_eq!(&features, subset.features());
        assert_eq!(labels, subset.labels());
        // A second gather with the same geometry reuses the buffer.
        let capacity_ptr = features.as_slice().as_ptr();
        d.gather_batch(&[0, 2, 3], &mut features, &mut labels);
        assert_eq!(features.as_slice().as_ptr(), capacity_ptr);
        assert_eq!(&features, d.subset(&[0, 2, 3]).features());
    }

    #[test]
    fn shuffle_indices_into_matches_batch_indices_stream() {
        let d = toy(10, 2);
        let mut a_rng = StdRng::seed_from_u64(3);
        let batches = d.batch_indices(7, &mut a_rng);
        let flat_a: Vec<usize> = batches.into_iter().flatten().collect();
        let mut b_rng = StdRng::seed_from_u64(3);
        let mut flat_b = Vec::new();
        d.shuffle_indices_into(&mut flat_b, &mut b_rng);
        assert_eq!(flat_a, flat_b);
    }

    #[test]
    fn min_max_normalization_maps_to_unit_interval() {
        let mut d = toy(10, 2);
        let ranges = d.normalize_min_max();
        assert_eq!(ranges.len(), 2);
        for r in 0..d.len() {
            for &v in d.features().row(r) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn apply_min_max_handles_degenerate_ranges() {
        let mut d = Dataset::from_rows(vec![vec![5.0], vec![5.0]], vec![0, 1], 2).unwrap();
        d.normalize_min_max();
        assert_eq!(d.features().get(0, 0), 0.0);
        assert_eq!(d.features().get(1, 0), 0.0);
    }

    #[test]
    fn same_seed_gives_same_split() {
        let d = toy(20, 2);
        let (a_train, _) = d
            .stratified_split(0.7, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let (b_train, _) = d
            .stratified_split(0.7, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(a_train, b_train);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn split_partitions_the_dataset(
            n_per_class in 4usize..30,
            frac in 0.2f64..0.8,
            seed in 0u64..1000
        ) {
            let d = {
                let mut xs = Vec::new();
                let mut ys = Vec::new();
                for c in 0..3usize {
                    for i in 0..n_per_class {
                        xs.push(vec![c as f32, i as f32]);
                        ys.push(c);
                    }
                }
                Dataset::from_rows(xs, ys, 3).unwrap()
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let (train, test) = d.stratified_split(frac, &mut rng).unwrap();
            prop_assert_eq!(train.len() + test.len(), d.len());
            prop_assert!(!train.is_empty());
            prop_assert!(!test.is_empty());
        }

        #[test]
        fn normalization_is_idempotent_on_unit_data(
            n in 2usize..20,
            seed in 0u64..100
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let xs: Vec<Vec<f32>> = (0..n)
                .map(|_| {
                    vec![
                        rand::Rng::gen_range(&mut rng, 0.0..1.0),
                        rand::Rng::gen_range(&mut rng, 0.0..1.0),
                    ]
                })
                .collect();
            let ys: Vec<usize> = (0..n).map(|i| i % 2).collect();
            let mut d = Dataset::from_rows(xs, ys, 2).unwrap();
            d.normalize_min_max();
            let snapshot = d.clone();
            d.normalize_min_max();
            for (a, b) in d.features().as_slice().iter().zip(snapshot.features().as_slice()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }
    }
}
