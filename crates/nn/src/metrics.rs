//! Classification metrics: accuracy, confusion matrix, precision/recall/F1.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Fraction of predictions that match the reference labels, in `[0, 1]`.
///
/// Returns `0.0` when the slices are empty or have different lengths.
///
/// # Example
///
/// ```
/// use pmlp_nn::accuracy;
/// assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    if predictions.is_empty() || predictions.len() != labels.len() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Confusion matrix: `matrix[true_class][predicted_class]` counts.
///
/// Entries with labels or predictions `>= class_count` are ignored.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    class_count: usize,
) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; class_count]; class_count];
    for (&p, &l) in predictions.iter().zip(labels.iter()) {
        if p < class_count && l < class_count {
            m[l][p] += 1;
        }
    }
    m
}

/// Macro-averaged F1 score over all classes, in `[0, 1]`.
///
/// Classes that never appear in either labels or predictions contribute an F1
/// of zero, matching the usual scikit-learn `zero_division=0` convention.
#[allow(clippy::needless_range_loop)] // cm[c][c] diagonal access reads best indexed
pub fn macro_f1(predictions: &[usize], labels: &[usize], class_count: usize) -> f64 {
    if class_count == 0 || predictions.len() != labels.len() || predictions.is_empty() {
        return 0.0;
    }
    let cm = confusion_matrix(predictions, labels, class_count);
    let mut f1_sum = 0.0;
    for c in 0..class_count {
        let tp = cm[c][c] as f64;
        let fp: f64 = (0..class_count)
            .filter(|&r| r != c)
            .map(|r| cm[r][c] as f64)
            .sum();
        let fn_: f64 = (0..class_count)
            .filter(|&p| p != c)
            .map(|p| cm[c][p] as f64)
            .sum();
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        f1_sum += f1;
    }
    f1_sum / class_count as f64
}

/// A per-class precision/recall/F1 summary plus overall accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Overall accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Macro-averaged F1 in `[0, 1]`.
    pub macro_f1: f64,
    /// Per-class `(precision, recall, f1, support)`.
    pub per_class: Vec<ClassMetrics>,
}

/// Precision/recall/F1 and support for a single class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Class index.
    pub class: usize,
    /// Precision in `[0, 1]`.
    pub precision: f64,
    /// Recall in `[0, 1]`.
    pub recall: f64,
    /// F1 score in `[0, 1]`.
    pub f1: f64,
    /// Number of reference samples of this class.
    pub support: usize,
}

impl ClassificationReport {
    /// Computes the full report from predictions and reference labels.
    #[allow(clippy::needless_range_loop)] // cm[c][c] diagonal access reads best indexed
    pub fn new(predictions: &[usize], labels: &[usize], class_count: usize) -> Self {
        let cm = confusion_matrix(predictions, labels, class_count);
        let mut per_class = Vec::with_capacity(class_count);
        for c in 0..class_count {
            let tp = cm[c][c] as f64;
            let fp: f64 = (0..class_count)
                .filter(|&r| r != c)
                .map(|r| cm[r][c] as f64)
                .sum();
            let fn_: f64 = (0..class_count)
                .filter(|&p| p != c)
                .map(|p| cm[c][p] as f64)
                .sum();
            let support: usize = cm[c].iter().sum();
            let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
            let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            per_class.push(ClassMetrics {
                class: c,
                precision,
                recall,
                f1,
                support,
            });
        }
        ClassificationReport {
            accuracy: accuracy(predictions, labels),
            macro_f1: macro_f1(predictions, labels, class_count),
            per_class,
        }
    }
}

impl fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "accuracy: {:.4}  macro-F1: {:.4}",
            self.accuracy, self.macro_f1
        )?;
        writeln!(
            f,
            "{:>6} {:>10} {:>10} {:>10} {:>8}",
            "class", "precision", "recall", "f1", "support"
        )?;
        for m in &self.per_class {
            writeln!(
                f,
                "{:>6} {:>10.4} {:>10.4} {:>10.4} {:>8}",
                m.class, m.precision, m.recall, m.f1, m.support
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_perfect_and_zero() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[1, 2, 0], &[0, 1, 2]), 0.0);
    }

    #[test]
    fn accuracy_empty_or_mismatched_is_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[0], &[0, 1]), 0.0);
    }

    #[test]
    fn confusion_matrix_diagonal_counts_correct_predictions() {
        let cm = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(cm[0][0], 1); // true 0 predicted 0
        assert_eq!(cm[1][0], 1); // true 1 predicted 0
        assert_eq!(cm[1][1], 2); // true 1 predicted 1
        assert_eq!(cm[0][1], 0);
    }

    #[test]
    fn macro_f1_perfect_prediction_is_one() {
        let labels = [0, 1, 2, 0, 1, 2];
        assert!((macro_f1(&labels, &labels, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalizes_missing_class() {
        // Predicting everything as class 0 on a balanced two-class problem:
        // class 0 gets f1 = 2*0.5*1/(1.5) = 2/3, class 1 gets 0 -> macro 1/3.
        let labels = [0, 0, 1, 1];
        let preds = [0, 0, 0, 0];
        assert!((macro_f1(&preds, &labels, 2) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn report_supports_sum_to_sample_count() {
        let labels = [0, 0, 1, 2, 2, 2];
        let preds = [0, 1, 1, 2, 0, 2];
        let report = ClassificationReport::new(&preds, &labels, 3);
        let total: usize = report.per_class.iter().map(|m| m.support).sum();
        assert_eq!(total, labels.len());
        assert!((report.accuracy - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn report_display_contains_header() {
        let report = ClassificationReport::new(&[0, 1], &[0, 1], 2);
        let text = report.to_string();
        assert!(text.contains("precision"));
        assert!(text.contains("accuracy"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn accuracy_is_in_unit_interval(
            preds in proptest::collection::vec(0usize..4, 1..50),
            seed in 0usize..4
        ) {
            let labels: Vec<usize> = preds.iter().map(|p| (p + seed) % 4).collect();
            let acc = accuracy(&preds, &labels);
            prop_assert!((0.0..=1.0).contains(&acc));
        }

        #[test]
        fn confusion_matrix_total_equals_sample_count(
            pairs in proptest::collection::vec((0usize..3, 0usize..3), 1..40)
        ) {
            let preds: Vec<usize> = pairs.iter().map(|(p, _)| *p).collect();
            let labels: Vec<usize> = pairs.iter().map(|(_, l)| *l).collect();
            let cm = confusion_matrix(&preds, &labels, 3);
            let total: usize = cm.iter().flatten().sum();
            prop_assert_eq!(total, pairs.len());
        }

        #[test]
        fn macro_f1_bounded_by_one(
            pairs in proptest::collection::vec((0usize..3, 0usize..3), 1..40)
        ) {
            let preds: Vec<usize> = pairs.iter().map(|(p, _)| *p).collect();
            let labels: Vec<usize> = pairs.iter().map(|(_, l)| *l).collect();
            let f1 = macro_f1(&preds, &labels, 3);
            prop_assert!((0.0..=1.0).contains(&f1));
        }
    }
}
