//! Loss functions for classification training.

use crate::activation::softmax_rows;
use crate::error::NnError;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Loss function used by the trainer.
///
/// The printed-MLP classifiers are trained with
/// [`Loss::SoftmaxCrossEntropy`]; [`Loss::MeanSquaredError`] is provided for
/// regression-style sanity tests and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Loss {
    /// Softmax over the logits followed by categorical cross-entropy.
    #[default]
    SoftmaxCrossEntropy,
    /// Mean squared error against one-hot targets.
    MeanSquaredError,
}

impl Loss {
    /// Computes the scalar loss for a batch.
    ///
    /// `logits` is `batch x classes`, `targets` holds the class index of each
    /// sample.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `targets.len() != logits.rows()`
    /// and [`NnError::InvalidDataset`] when a target index is out of range.
    pub fn compute(self, logits: &Matrix, targets: &[usize]) -> Result<f32, NnError> {
        self.validate(logits, targets)?;
        let n = logits.rows() as f32;
        match self {
            Loss::SoftmaxCrossEntropy => {
                let probs = softmax_rows(logits);
                let mut total = 0.0;
                for (r, &t) in targets.iter().enumerate() {
                    let p = probs.get(r, t).max(1e-12);
                    total -= p.ln();
                }
                Ok(total / n)
            }
            Loss::MeanSquaredError => {
                let mut total = 0.0;
                for (r, &t) in targets.iter().enumerate() {
                    for c in 0..logits.cols() {
                        let target = if c == t { 1.0 } else { 0.0 };
                        let diff = logits.get(r, c) - target;
                        total += diff * diff;
                    }
                }
                Ok(total / (n * logits.cols() as f32))
            }
        }
    }

    /// Gradient of the loss with respect to the logits, averaged over the
    /// batch (so learning rates are batch-size independent).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Loss::compute`].
    pub fn gradient(self, logits: &Matrix, targets: &[usize]) -> Result<Matrix, NnError> {
        self.validate(logits, targets)?;
        let n = logits.rows() as f32;
        match self {
            Loss::SoftmaxCrossEntropy => {
                let mut grad = softmax_rows(logits);
                for (r, &t) in targets.iter().enumerate() {
                    let v = grad.get(r, t);
                    grad.set(r, t, v - 1.0);
                }
                // In place — same arithmetic as `scale(1.0 / n)` without the
                // extra per-batch allocation.
                let inv_n = 1.0 / n;
                grad.map_inplace(|x| x * inv_n);
                Ok(grad)
            }
            Loss::MeanSquaredError => {
                let mut grad = logits.clone();
                for (r, &t) in targets.iter().enumerate() {
                    for c in 0..logits.cols() {
                        let target = if c == t { 1.0 } else { 0.0 };
                        grad.set(r, c, 2.0 * (logits.get(r, c) - target));
                    }
                }
                Ok(grad.scale(1.0 / (n * logits.cols() as f32)))
            }
        }
    }

    /// Computes the scalar loss *and* its gradient in one pass, sharing the
    /// softmax (the dominant transcendental cost) between the two — the
    /// training loop needs both every batch, and computing them separately
    /// exponentiates every logit twice.
    ///
    /// Bit-for-bit identical to calling [`Loss::compute`] and
    /// [`Loss::gradient`] separately.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Loss::compute`].
    pub fn compute_with_gradient(
        self,
        logits: &Matrix,
        targets: &[usize],
    ) -> Result<(f32, Matrix), NnError> {
        self.validate(logits, targets)?;
        let n = logits.rows() as f32;
        match self {
            Loss::SoftmaxCrossEntropy => {
                let mut grad = softmax_rows(logits);
                let mut total = 0.0;
                for (r, &t) in targets.iter().enumerate() {
                    let p = grad.get(r, t);
                    total -= p.max(1e-12).ln();
                    grad.set(r, t, p - 1.0);
                }
                let inv_n = 1.0 / n;
                grad.map_inplace(|x| x * inv_n);
                Ok((total / n, grad))
            }
            Loss::MeanSquaredError => Ok((
                self.compute(logits, targets)?,
                self.gradient(logits, targets)?,
            )),
        }
    }

    fn validate(self, logits: &Matrix, targets: &[usize]) -> Result<(), NnError> {
        if targets.len() != logits.rows() {
            return Err(NnError::ShapeMismatch {
                context: "loss targets".into(),
                left: logits.shape(),
                right: (targets.len(), 1),
            });
        }
        if let Some(&bad) = targets.iter().find(|&&t| t >= logits.cols()) {
            return Err(NnError::InvalidDataset {
                context: format!(
                    "target class {bad} out of range for {} classes",
                    logits.cols()
                ),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Loss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Loss::SoftmaxCrossEntropy => "softmax_cross_entropy",
            Loss::MeanSquaredError => "mean_squared_error",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_is_low_for_confident_correct_prediction() {
        let logits = Matrix::from_rows(&[vec![10.0, -10.0]]).unwrap();
        let loss = Loss::SoftmaxCrossEntropy.compute(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_is_high_for_confident_wrong_prediction() {
        let logits = Matrix::from_rows(&[vec![10.0, -10.0]]).unwrap();
        let loss = Loss::SoftmaxCrossEntropy.compute(&logits, &[1]).unwrap();
        assert!(loss > 5.0);
    }

    #[test]
    fn uniform_logits_give_log_of_class_count() {
        let logits = Matrix::zeros(1, 4);
        let loss = Loss::SoftmaxCrossEntropy.compute(&logits, &[2]).unwrap();
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_shapes_match_logits() {
        let logits = Matrix::zeros(3, 5);
        let grad = Loss::SoftmaxCrossEntropy
            .gradient(&logits, &[0, 1, 2])
            .unwrap();
        assert_eq!(grad.shape(), (3, 5));
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[vec![0.2, -0.4, 0.7]]).unwrap();
        let targets = [2usize];
        let grad = Loss::SoftmaxCrossEntropy
            .gradient(&logits, &targets)
            .unwrap();
        let eps = 1e-3_f32;
        for c in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, c, logits.get(0, c) + eps);
            let mut lm = logits.clone();
            lm.set(0, c, logits.get(0, c) - eps);
            let numeric = (Loss::SoftmaxCrossEntropy.compute(&lp, &targets).unwrap()
                - Loss::SoftmaxCrossEntropy.compute(&lm, &targets).unwrap())
                / (2.0 * eps);
            assert!((numeric - grad.get(0, c)).abs() < 1e-3);
        }
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[vec![0.9, -0.3]]).unwrap();
        let targets = [0usize];
        let grad = Loss::MeanSquaredError.gradient(&logits, &targets).unwrap();
        let eps = 1e-3_f32;
        for c in 0..2 {
            let mut lp = logits.clone();
            lp.set(0, c, logits.get(0, c) + eps);
            let mut lm = logits.clone();
            lm.set(0, c, logits.get(0, c) - eps);
            let numeric = (Loss::MeanSquaredError.compute(&lp, &targets).unwrap()
                - Loss::MeanSquaredError.compute(&lm, &targets).unwrap())
                / (2.0 * eps);
            assert!((numeric - grad.get(0, c)).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_target_length_mismatch() {
        let logits = Matrix::zeros(2, 2);
        assert!(Loss::SoftmaxCrossEntropy.compute(&logits, &[0]).is_err());
    }

    #[test]
    fn rejects_out_of_range_class() {
        let logits = Matrix::zeros(1, 2);
        assert!(matches!(
            Loss::SoftmaxCrossEntropy.compute(&logits, &[5]),
            Err(NnError::InvalidDataset { .. })
        ));
    }

    #[test]
    fn mse_loss_zero_for_exact_one_hot() {
        let logits = Matrix::from_rows(&[vec![1.0, 0.0, 0.0]]).unwrap();
        let loss = Loss::MeanSquaredError.compute(&logits, &[0]).unwrap();
        assert!(loss.abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cross_entropy_is_non_negative(
            v in proptest::collection::vec(-10.0f32..10.0, 6),
            t in 0usize..3
        ) {
            let logits = Matrix::from_vec(2, 3, v).unwrap();
            let loss = Loss::SoftmaxCrossEntropy.compute(&logits, &[t, (t + 1) % 3]).unwrap();
            prop_assert!(loss >= 0.0);
            prop_assert!(loss.is_finite());
        }

        #[test]
        fn gradient_rows_of_cross_entropy_sum_to_zero(
            v in proptest::collection::vec(-5.0f32..5.0, 4),
            t in 0usize..4
        ) {
            let logits = Matrix::from_vec(1, 4, v).unwrap();
            let grad = Loss::SoftmaxCrossEntropy.gradient(&logits, &[t]).unwrap();
            let sum: f32 = grad.row(0).iter().sum();
            // softmax probabilities sum to 1 and the target subtracts exactly 1
            prop_assert!(sum.abs() < 1e-4);
        }
    }
}
