//! Dense row-major `f32` matrix used throughout the crate.
//!
//! The printed-MLP workloads are tiny (tens of neurons, thousands of samples),
//! so a straightforward dense implementation with bounds-checked accessors and
//! explicit error reporting is preferred over an external BLAS dependency.

use crate::error::NnError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense row-major matrix of `f32` values.
///
/// # Example
///
/// ```
/// use pmlp_nn::Matrix;
///
/// # fn main() -> Result<(), pmlp_nn::NnError> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }

    /// Reuses the existing allocation when the capacities allow — hot
    /// training loops `clone_from` into persistent buffers every batch.
    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        self.data.clone_from(&source.data);
    }
}

impl Matrix {
    /// Creates a matrix of `rows x cols` filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows.checked_mul(cols).expect("matrix size overflow")],
        }
    }

    /// Creates a matrix of `rows x cols` filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a slice of equally-long rows.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidDimension`] if `rows` is empty or the rows do
    /// not all have the same length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, NnError> {
        if rows.is_empty() {
            return Err(NnError::InvalidDimension {
                context: "from_rows: no rows".into(),
            });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(NnError::InvalidDimension {
                context: "from_rows: zero columns".into(),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(NnError::InvalidDimension {
                    context: format!(
                        "from_rows: row {i} has {} columns, expected {cols}",
                        row.len()
                    ),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidDimension`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, NnError> {
        if data.len() != rows * cols {
            return Err(NnError::InvalidDimension {
                context: format!(
                    "from_vec: expected {} elements, got {}",
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = value;
    }

    /// Borrowed view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn column(&self, c: usize) -> Vec<f32> {
        self.column_iter(c).collect()
    }

    /// Strided, allocation-free iterator over column `c` (top to bottom) —
    /// the hot-path counterpart of [`Matrix::column`], which allocates a
    /// fresh `Vec` per call.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn column_iter(&self, c: usize) -> impl Iterator<Item = f32> + '_ {
        assert!(
            c < self.cols,
            "column {c} out of bounds for {} columns",
            self.cols
        );
        self.data.iter().skip(c).step_by(self.cols).copied()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks(self.cols)
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// Transposes into a caller-owned matrix, reusing its allocation — the
    /// backprop hot path re-transposes the weight matrix every batch, so
    /// avoiding the per-call allocation matters.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.rows = self.cols;
        out.cols = self.rows;
        out.data.clear();
        out.data.reserve(self.rows * self.cols);
        for c in 0..self.cols {
            out.data
                .extend(self.data.iter().skip(c).step_by(self.cols.max(1)));
        }
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// How many multiply-adds a product must involve before `matmul_into`
    /// fans rows out over the rayon pool; below this the sequential kernel
    /// wins (and candidate-level parallelism already saturates the cores).
    const PAR_MATMUL_FLOPS: usize = 1 << 20;

    /// Matrix product `self * other` written into a caller-owned matrix,
    /// reusing its allocation.
    ///
    /// This is the training hot kernel: a dense `ikj` loop blocked over `k`
    /// for cache locality (iteration order — and therefore every f32
    /// rounding — is identical to the naive kernel), with no per-element
    /// zero test on the left operand, and with rows fanned out over the
    /// rayon pool for large products. Row results are independent, so the
    /// parallel and sequential paths are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `self.cols() != other.rows()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                context: "matmul".into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        out.rows = self.rows;
        out.cols = other.cols;
        out.data.clear();
        out.data.resize(self.rows * other.cols, 0.0);

        let flops = self.rows * self.cols * other.cols;
        if flops >= Self::PAR_MATMUL_FLOPS && rayon::current_num_threads() > 1 && self.rows > 1 {
            use rayon::prelude::*;
            let rows_per_chunk = self.rows.div_ceil(rayon::current_num_threads()).max(1);
            out.data
                .par_chunks_mut(rows_per_chunk * other.cols)
                .enumerate()
                .for_each(|(chunk_index, chunk)| {
                    let row0 = chunk_index * rows_per_chunk;
                    matmul_rows(
                        &self.data[row0 * self.cols..],
                        self.cols,
                        &other.data,
                        other.cols,
                        chunk,
                    );
                });
        } else {
            matmul_rows(
                &self.data,
                self.cols,
                &other.data,
                other.cols,
                &mut out.data,
            );
        }
        Ok(())
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn add_elem(&self, other: &Matrix) -> Result<Matrix, NnError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn sub_elem(&self, other: &Matrix) -> Result<Matrix, NnError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix, NnError> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        context: &str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix, NnError> {
        if self.shape() != other.shape() {
            return Err(NnError::ShapeMismatch {
                context: context.into(),
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds a row vector (broadcast over rows), used for bias addition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Result<Matrix, NnError> {
        if bias.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                context: "add_row_broadcast".into(),
                left: self.shape(),
                right: (1, bias.len()),
            });
        }
        let mut out = self.clone();
        out.add_row_broadcast_inplace(bias)?;
        Ok(out)
    }

    /// Adds a row vector to every row in place (allocation-free counterpart
    /// of [`Matrix::add_row_broadcast`], used in the batched inference path).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `bias.len() != self.cols()`.
    pub fn add_row_broadcast_inplace(&mut self, bias: &[f32]) -> Result<(), NnError> {
        if bias.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                context: "add_row_broadcast_inplace".into(),
                left: self.shape(),
                right: (1, bias.len()),
            });
        }
        for row in self.data.chunks_mut(self.cols) {
            for (v, b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
        Ok(())
    }

    /// Overwrites this matrix with the selected rows of `src`, reusing the
    /// existing allocation (the allocation-free counterpart of
    /// [`Matrix::select_rows`], used by the mini-batch gather path).
    ///
    /// # Panics
    ///
    /// Panics when the column counts differ, `indices.len() != self.rows()`,
    /// or any index is out of bounds for `src`.
    pub fn copy_rows_from(&mut self, src: &Matrix, indices: &[usize]) {
        assert_eq!(self.cols, src.cols, "copy_rows_from: column mismatch");
        assert_eq!(
            self.rows,
            indices.len(),
            "copy_rows_from: row-count mismatch"
        );
        for (dst, &src_row) in indices.iter().enumerate() {
            let start = dst * self.cols;
            self.data[start..start + self.cols].copy_from_slice(src.row(src_row));
        }
    }

    /// Sums over rows, producing a vector of length `cols`.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (acc, &v) in out.iter_mut().zip(row.iter()) {
                *acc += v;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute value; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Number of elements equal to exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Selects the given rows into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Index of the maximum value in each row (argmax), ties resolved to the
    /// lowest index.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }
}

/// Dense row-major product kernel shared by the sequential and row-parallel
/// paths of [`Matrix::matmul_into`]: `out` holds one or more complete result
/// rows, `a` points at the first corresponding row of the left operand.
///
/// Blocked over output columns so the live `out` stripe stays cache-resident
/// across the whole `k` sweep. Per output element the accumulation order is
/// `k` ascending — identical to the naive kernel, so results are bit-for-bit
/// unchanged — and the dense inner loop carries no per-element zero test, so
/// it vectorizes.
fn matmul_rows(a: &[f32], a_cols: usize, b: &[f32], b_cols: usize, out: &mut [f32]) {
    const J_BLOCK: usize = 512;
    if b_cols == 0 || a_cols == 0 {
        return;
    }
    for (i, out_row) in out.chunks_mut(b_cols).enumerate() {
        let a_row = &a[i * a_cols..(i + 1) * a_cols];
        let mut j0 = 0;
        while j0 < b_cols {
            let j1 = (j0 + J_BLOCK).min(b_cols);
            let out_chunk = &mut out_row[j0..j1];
            let width = j1 - j0;
            // Register-block four `k` steps per sweep: the accumulator stays
            // live across four multiply-adds instead of being re-read and
            // re-written per step, quartering the `out` traffic. Per element
            // the adds still happen in ascending-`k` order.
            let mut k = 0;
            while k + 4 <= a_cols {
                let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
                let b0 = &b[k * b_cols + j0..k * b_cols + j0 + width];
                let b1 = &b[(k + 1) * b_cols + j0..(k + 1) * b_cols + j0 + width];
                let b2 = &b[(k + 2) * b_cols + j0..(k + 2) * b_cols + j0 + width];
                let b3 = &b[(k + 3) * b_cols + j0..(k + 3) * b_cols + j0 + width];
                for ((((o, &v0), &v1), &v2), &v3) in
                    out_chunk.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    let mut acc = *o;
                    acc += a0 * v0;
                    acc += a1 * v1;
                    acc += a2 * v2;
                    acc += a3 * v3;
                    *o = acc;
                }
                k += 4;
            }
            for (k, &av) in a_row.iter().enumerate().skip(k) {
                let b_chunk = &b[k * b_cols + j0..k * b_cols + j1];
                for (o, &bv) in out_chunk.iter_mut().zip(b_chunk) {
                    *o += av * bv;
                }
            }
            j0 = j1;
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for row in self.iter_rows() {
            let cells: Vec<String> = row.iter().map(|x| format!("{x:>9.4}")).collect();
            writeln!(f, "[{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if shapes differ; use [`Matrix::add_elem`] for a fallible version.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.add_elem(rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if shapes differ; use [`Matrix::sub_elem`] for a fallible version.
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.sub_elem(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(NnError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, NnError::InvalidDimension { .. }));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_each_row() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let out = a.add_row_broadcast(&[10.0, 20.0]).unwrap();
        assert_eq!(out.row(0), &[11.0, 21.0]);
        assert_eq!(out.row(1), &[12.0, 22.0]);
    }

    #[test]
    fn argmax_rows_resolves_ties_to_lowest_index() {
        let a = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.1, 0.9]]).unwrap();
        assert_eq!(a.argmax_rows(), vec![0, 1]);
    }

    #[test]
    fn sum_rows_and_mean() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.sum_rows(), vec![4.0, 6.0]);
        assert!((a.mean() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn count_zeros_counts_exact_zeros() {
        let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![0.0, 0.0]]).unwrap();
        assert_eq!(a.count_zeros(), 3);
    }

    #[test]
    fn add_row_broadcast_inplace_matches_allocating_version() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let mut b = a.clone();
        b.add_row_broadcast_inplace(&[10.0, 20.0]).unwrap();
        assert_eq!(b, a.add_row_broadcast(&[10.0, 20.0]).unwrap());
        assert!(b.add_row_broadcast_inplace(&[1.0]).is_err());
    }

    #[test]
    fn copy_rows_from_matches_select_rows() {
        let src = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let mut dst = Matrix::zeros(2, 2);
        dst.copy_rows_from(&src, &[2, 0]);
        assert_eq!(dst, src.select_rows(&[2, 0]));
    }

    #[test]
    #[should_panic(expected = "row-count mismatch")]
    fn copy_rows_from_rejects_wrong_row_count() {
        let src = Matrix::zeros(3, 2);
        let mut dst = Matrix::zeros(1, 2);
        dst.copy_rows_from(&src, &[0, 1]);
    }

    #[test]
    fn select_rows_picks_rows_in_order() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), &[3.0]);
        assert_eq!(sel.row(1), &[1.0]);
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, -3.0], vec![0.5, -1.5, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![2.0, 0.0], vec![-1.0, 3.0], vec![0.5, 1.0]]).unwrap();
        let expected = a.matmul(&b).unwrap();
        // Start from a buffer of the wrong shape and stale contents.
        let mut out = Matrix::filled(5, 7, 9.0);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, expected);
        // Repeated calls into the same buffer stay correct.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, expected);
        // Shape mismatch is still reported.
        assert!(b.matmul_into(&b, &mut out).is_err());
    }

    #[test]
    fn matmul_has_no_zero_skip_semantics_change() {
        // Rows/operands full of zeros still produce exact results.
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, -2.0], vec![7.0, 5.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[0.0, 0.0]);
        assert_eq!(c.row(1), &[3.0, -2.0]);
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let mut out = Matrix::filled(1, 1, 42.0);
        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());
        // And again, reusing the now-correctly-sized buffer.
        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());
    }

    #[test]
    fn column_iter_matches_column() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        for c in 0..2 {
            assert_eq!(a.column_iter(c).collect::<Vec<_>>(), a.column(c));
        }
        assert_eq!(a.column_iter(1).sum::<f32>(), 12.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn column_iter_panics_out_of_bounds() {
        let a = Matrix::zeros(2, 2);
        let _ = a.column_iter(2);
    }

    #[test]
    fn clone_from_reuses_allocation_and_copies_exactly() {
        let src = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut dst = Matrix::zeros(7, 3);
        dst.clone_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.shape(), (2, 2));
    }

    #[test]
    fn operators_match_methods() {
        let a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::filled(2, 2, 1.0);
        assert_eq!(&a + &b, Matrix::filled(2, 2, 4.0));
        assert_eq!(&a - &b, Matrix::filled(2, 2, 2.0));
        assert_eq!(&a * 2.0, Matrix::filled(2, 2, 6.0));
    }

    #[test]
    fn display_contains_dimensions() {
        let a = Matrix::zeros(1, 2);
        let s = format!("{a}");
        assert!(s.contains("1x2"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
    }

    proptest! {
        #[test]
        fn transpose_is_involution(m in small_matrix(4, 3)) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn matmul_identity_left_and_right(m in small_matrix(3, 3)) {
            let i = Matrix::identity(3);
            let left = i.matmul(&m).unwrap();
            let right = m.matmul(&i).unwrap();
            for (a, b) in left.as_slice().iter().zip(m.as_slice()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
            for (a, b) in right.as_slice().iter().zip(m.as_slice()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }

        #[test]
        fn addition_commutes(a in small_matrix(3, 4), b in small_matrix(3, 4)) {
            let ab = a.add_elem(&b).unwrap();
            let ba = b.add_elem(&a).unwrap();
            for (x, y) in ab.as_slice().iter().zip(ba.as_slice()) {
                prop_assert!((x - y).abs() < 1e-6);
            }
        }

        #[test]
        fn scale_by_zero_gives_zero_matrix(a in small_matrix(2, 5)) {
            let z = a.scale(0.0);
            prop_assert_eq!(z.count_zeros(), z.len());
        }

        #[test]
        fn frobenius_norm_non_negative_and_zero_only_for_zero(a in small_matrix(3, 3)) {
            let n = a.frobenius_norm();
            prop_assert!(n >= 0.0);
            if a.as_slice().iter().all(|&x| x == 0.0) {
                prop_assert!(n == 0.0);
            }
        }
    }
}
