//! Error type shared by the whole crate.

use std::fmt;

/// Error returned by fallible operations in [`crate`].
///
/// The variants are deliberately coarse: the networks in play are tiny and the
/// most common failure is a caller passing mismatched dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Two shapes that must agree do not (e.g. matrix multiply operands).
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        context: String,
        /// Shape of the left/first operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A dimension that must be non-zero was zero, or otherwise invalid.
    InvalidDimension {
        /// Description of the offending argument.
        context: String,
    },
    /// A configuration value is out of its admissible range.
    InvalidConfig {
        /// Description of the offending configuration.
        context: String,
    },
    /// A dataset is empty or internally inconsistent.
    InvalidDataset {
        /// Description of the inconsistency.
        context: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch {
                context,
                left,
                right,
            } => write!(
                f,
                "shape mismatch in {context}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            NnError::InvalidDimension { context } => {
                write!(f, "invalid dimension: {context}")
            }
            NnError::InvalidConfig { context } => write!(f, "invalid configuration: {context}"),
            NnError::InvalidDataset { context } => write!(f, "invalid dataset: {context}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch_mentions_both_shapes() {
        let err = NnError::ShapeMismatch {
            context: "matmul".to_string(),
            left: (2, 3),
            right: (4, 5),
        };
        let text = err.to_string();
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
        assert!(text.contains("matmul"));
    }

    #[test]
    fn display_invalid_dimension() {
        let err = NnError::InvalidDimension {
            context: "zero rows".into(),
        };
        assert!(err.to_string().contains("zero rows"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
