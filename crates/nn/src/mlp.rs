//! The multilayer perceptron model and its builder.

use crate::activation::Activation;
use crate::dataset::Dataset;
use crate::error::NnError;
use crate::init::WeightInit;
use crate::layer::{BackpropScratch, DenseLayer, LayerCache, LayerGradient};
use crate::matrix::Matrix;
use crate::metrics;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward multilayer perceptron.
///
/// The model is a plain sequence of [`DenseLayer`]s. The output layer
/// produces raw logits (use [`Mlp::predict`] for class decisions); training
/// with a softmax cross-entropy loss is handled by [`crate::Trainer`].
///
/// # Example
///
/// ```
/// use pmlp_nn::{MlpBuilder, Activation, Matrix};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), pmlp_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mlp = MlpBuilder::new(4)
///     .hidden(10, Activation::ReLU)
///     .output(3)
///     .build(&mut rng)?;
/// assert_eq!(mlp.input_size(), 4);
/// assert_eq!(mlp.output_size(), 3);
/// let x = Matrix::zeros(2, 4);
/// assert_eq!(mlp.forward(&x)?.shape(), (2, 3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

/// Reusable per-layer backprop buffers for a whole network; see
/// [`Mlp::backward_with_scratch`]. Sized lazily on first use, so one
/// `MlpScratch::default()` serves any model.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    layers: Vec<BackpropScratch>,
}

impl Mlp {
    /// Builds an MLP from pre-constructed layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when `layers` is empty or consecutive
    /// layer sizes do not chain (`layer[i].outputs() != layer[i+1].inputs()`).
    pub fn from_layers(layers: Vec<DenseLayer>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::InvalidConfig {
                context: "mlp needs at least one layer".into(),
            });
        }
        for (i, pair) in layers.windows(2).enumerate() {
            if pair[0].outputs() != pair[1].inputs() {
                return Err(NnError::InvalidConfig {
                    context: format!(
                        "layer {i} has {} outputs but layer {} expects {} inputs",
                        pair[0].outputs(),
                        i + 1,
                        pair[1].inputs()
                    ),
                });
            }
        }
        Ok(Mlp { layers })
    }

    /// Number of input features.
    pub fn input_size(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Number of output classes (logits).
    pub fn output_size(&self) -> usize {
        self.layers
            .last()
            .expect("mlp has at least one layer")
            .outputs()
    }

    /// The layers of the network, input to output.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutable access to the layers; used by the minimization passes.
    pub fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// Layer sizes as `[inputs, hidden..., outputs]` (the paper's topology
    /// notation, e.g. `[11, 30, 7]` for a WhiteWine MLP).
    pub fn topology(&self) -> Vec<usize> {
        let mut t = vec![self.input_size()];
        t.extend(self.layers.iter().map(|l| l.outputs()));
        t
    }

    /// Total number of weights across all layers (excluding biases).
    pub fn weight_count(&self) -> usize {
        self.layers.iter().map(|l| l.weight_count()).sum()
    }

    /// Total number of weights equal to exactly zero (pruned connections).
    pub fn zero_weight_count(&self) -> usize {
        self.layers.iter().map(|l| l.zero_weight_count()).sum()
    }

    /// Overall sparsity: fraction of weights that are zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        if self.weight_count() == 0 {
            0.0
        } else {
            self.zero_weight_count() as f64 / self.weight_count() as f64
        }
    }

    /// Forward pass producing raw logits for a batch (one sample per row).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `x.cols() != self.input_size()`.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let (first, rest) = self
            .layers
            .split_first()
            .expect("mlp has at least one layer");
        let mut out = first.forward(x)?;
        for layer in rest {
            out = layer.forward(&out)?;
        }
        Ok(out)
    }

    /// Forward pass that also returns per-layer caches for backprop.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the input width is wrong.
    pub fn forward_with_caches(&self, x: &Matrix) -> Result<(Matrix, Vec<LayerCache>), NnError> {
        let mut caches = Vec::new();
        let out = self.forward_with_caches_into(x, &mut caches)?;
        Ok((out, caches))
    }

    /// Forward pass writing the per-layer backprop caches into caller-owned
    /// storage, reusing its buffers across calls — the trainer keeps one
    /// cache vector alive for the whole run instead of reallocating the
    /// input/pre-activation copies of every layer every batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the input width is wrong.
    pub fn forward_with_caches_into(
        &self,
        x: &Matrix,
        caches: &mut Vec<LayerCache>,
    ) -> Result<Matrix, NnError> {
        if caches.len() != self.layers.len() {
            caches.clear();
            caches.resize_with(self.layers.len(), || LayerCache {
                input: Matrix::zeros(0, 0),
                pre_activation: Matrix::zeros(0, 0),
            });
        }
        let (first, rest) = self
            .layers
            .split_first()
            .expect("mlp has at least one layer");
        let (first_cache, rest_caches) = caches
            .split_first_mut()
            .expect("cache vector sized to layer count");
        let mut out = first.forward_with_cache_into(x, first_cache)?;
        for (layer, cache) in rest.iter().zip(rest_caches.iter_mut()) {
            out = layer.forward_with_cache_into(&out, cache)?;
        }
        Ok(out)
    }

    /// Backward pass: given the gradient of the loss w.r.t. the logits and the
    /// caches from [`Mlp::forward_with_caches`], returns one gradient per
    /// layer (input to output order).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes are inconsistent with
    /// the caches.
    pub fn backward(
        &self,
        caches: &[LayerCache],
        grad_logits: &Matrix,
    ) -> Result<Vec<LayerGradient>, NnError> {
        let mut scratch = MlpScratch::default();
        self.backward_with_scratch(caches, grad_logits.clone(), &mut scratch)
    }

    /// Backward pass reusing caller-owned per-layer transpose buffers.
    ///
    /// Identical math to [`Mlp::backward`]; the trainer holds one
    /// [`MlpScratch`] across all batches so the per-layer weight/input
    /// transposes stop allocating.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes are inconsistent with
    /// the caches.
    pub fn backward_with_scratch(
        &self,
        caches: &[LayerCache],
        grad_logits: Matrix,
        scratch: &mut MlpScratch,
    ) -> Result<Vec<LayerGradient>, NnError> {
        if caches.len() != self.layers.len() {
            return Err(NnError::InvalidConfig {
                context: format!("{} caches for {} layers", caches.len(), self.layers.len()),
            });
        }
        if scratch.layers.len() != self.layers.len() {
            scratch.layers.clear();
            scratch
                .layers
                .resize_with(self.layers.len(), BackpropScratch::default);
        }
        let mut grads = vec![None; self.layers.len()];
        let mut grad = grad_logits;
        for (i, layer) in self.layers.iter().enumerate().rev() {
            if i == 0 {
                // Nothing consumes dL/dx of the first layer; skip its
                // input-gradient matmul entirely.
                grads[0] =
                    Some(layer.backward_params_only(&caches[0], grad, &mut scratch.layers[0])?);
                break;
            }
            let (grad_input, layer_grad) =
                layer.backward_with_scratch(&caches[i], grad, &mut scratch.layers[i])?;
            grads[i] = Some(layer_grad);
            grad = grad_input;
        }
        Ok(grads
            .into_iter()
            .map(|g| g.expect("all layer gradients filled"))
            .collect())
    }

    /// Applies one update per layer (already scaled by the optimizer).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the number of updates differs
    /// from the number of layers, or [`NnError::ShapeMismatch`] from the layer
    /// update itself.
    pub fn apply_updates(&mut self, updates: &[LayerGradient]) -> Result<(), NnError> {
        if updates.len() != self.layers.len() {
            return Err(NnError::InvalidConfig {
                context: format!("{} updates for {} layers", updates.len(), self.layers.len()),
            });
        }
        for (layer, update) in self.layers.iter_mut().zip(updates.iter()) {
            layer.apply_update(update)?;
        }
        Ok(())
    }

    /// Predicted class index for every sample in `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the input width is wrong.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>, NnError> {
        Ok(self.forward(x)?.argmax_rows())
    }

    /// Classification accuracy on a dataset, in `[0, 1]`.
    ///
    /// Returns `0.0` when the forward pass fails (wrong feature width), so the
    /// method can be used directly as a fitness value.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        match self.predict(data.features()) {
            Ok(pred) => metrics::accuracy(&pred, data.labels()),
            Err(_) => 0.0,
        }
    }

    /// Collects every weight of the network into a flat vector
    /// (layer by layer, row-major), useful for clustering and statistics.
    pub fn flatten_weights(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.weight_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.weights().as_slice());
        }
        out
    }

    /// Largest absolute weight in the network (used to size fixed-point
    /// formats).
    pub fn max_abs_weight(&self) -> f32 {
        self.layers
            .iter()
            .map(|l| l.weights().max_abs())
            .fold(0.0, f32::max)
    }
}

/// Builder for [`Mlp`] instances.
///
/// # Example
///
/// ```
/// use pmlp_nn::{MlpBuilder, Activation, WeightInit};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), pmlp_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let mlp = MlpBuilder::new(16)
///     .hidden(20, Activation::ReLU)
///     .hidden(10, Activation::ReLU)
///     .output(10)
///     .weight_init(WeightInit::HeUniform)
///     .build(&mut rng)?;
/// assert_eq!(mlp.topology(), vec![16, 20, 10, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    input_size: usize,
    hidden: Vec<(usize, Activation)>,
    output_size: Option<usize>,
    output_activation: Activation,
    weight_init: WeightInit,
}

impl MlpBuilder {
    /// Starts a builder for a network with `input_size` input features.
    pub fn new(input_size: usize) -> Self {
        MlpBuilder {
            input_size,
            hidden: Vec::new(),
            output_size: None,
            output_activation: Activation::Identity,
            weight_init: WeightInit::XavierUniform,
        }
    }

    /// Appends a hidden layer of `size` neurons with the given activation.
    #[must_use]
    pub fn hidden(mut self, size: usize, activation: Activation) -> Self {
        self.hidden.push((size, activation));
        self
    }

    /// Sets the output layer size (number of classes). The output activation
    /// defaults to [`Activation::Identity`] because training applies softmax
    /// inside the loss.
    #[must_use]
    pub fn output(mut self, size: usize) -> Self {
        self.output_size = Some(size);
        self
    }

    /// Overrides the output activation.
    #[must_use]
    pub fn output_activation(mut self, activation: Activation) -> Self {
        self.output_activation = activation;
        self
    }

    /// Overrides the weight initialization scheme (default:
    /// [`WeightInit::XavierUniform`]).
    #[must_use]
    pub fn weight_init(mut self, init: WeightInit) -> Self {
        self.weight_init = init;
        self
    }

    /// Builds the network, sampling initial weights from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when no output size was set, or
    /// [`NnError::InvalidDimension`] when any layer size is zero.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Mlp, NnError> {
        let output_size = self.output_size.ok_or_else(|| NnError::InvalidConfig {
            context: "MlpBuilder: output size not set".into(),
        })?;
        if self.input_size == 0 {
            return Err(NnError::InvalidDimension {
                context: "input size is zero".into(),
            });
        }
        let mut layers = Vec::with_capacity(self.hidden.len() + 1);
        let mut prev = self.input_size;
        for &(size, activation) in &self.hidden {
            layers.push(DenseLayer::new(
                prev,
                size,
                activation,
                self.weight_init,
                rng,
            )?);
            prev = size;
        }
        layers.push(DenseLayer::new(
            prev,
            output_size,
            self.output_activation,
            self.weight_init,
            rng,
        )?);
        Mlp::from_layers(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_mlp() -> Mlp {
        let mut rng = StdRng::seed_from_u64(2);
        MlpBuilder::new(3)
            .hidden(5, Activation::ReLU)
            .output(2)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn builder_requires_output() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(MlpBuilder::new(3)
            .hidden(4, Activation::ReLU)
            .build(&mut rng)
            .is_err());
    }

    #[test]
    fn builder_rejects_zero_input() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(MlpBuilder::new(0).output(2).build(&mut rng).is_err());
    }

    #[test]
    fn topology_reports_all_layer_sizes() {
        let mlp = tiny_mlp();
        assert_eq!(mlp.topology(), vec![3, 5, 2]);
        assert_eq!(mlp.weight_count(), 3 * 5 + 5 * 2);
    }

    #[test]
    fn from_layers_rejects_size_mismatch() {
        let mut rng = StdRng::seed_from_u64(1);
        let l1 =
            DenseLayer::new(3, 4, Activation::ReLU, WeightInit::XavierUniform, &mut rng).unwrap();
        let l2 = DenseLayer::new(
            5,
            2,
            Activation::Identity,
            WeightInit::XavierUniform,
            &mut rng,
        )
        .unwrap();
        assert!(Mlp::from_layers(vec![l1, l2]).is_err());
    }

    #[test]
    fn from_layers_rejects_empty() {
        assert!(Mlp::from_layers(vec![]).is_err());
    }

    #[test]
    fn forward_produces_logits_per_class() {
        let mlp = tiny_mlp();
        let x = Matrix::zeros(4, 3);
        let y = mlp.forward(&x).unwrap();
        assert_eq!(y.shape(), (4, 2));
    }

    #[test]
    fn predict_returns_one_class_per_sample() {
        let mlp = tiny_mlp();
        let x = Matrix::zeros(6, 3);
        let preds = mlp.predict(&x).unwrap();
        assert_eq!(preds.len(), 6);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn accuracy_on_wrong_width_input_is_zero() {
        let mlp = tiny_mlp();
        let data = Dataset::from_rows(vec![vec![0.0; 7]; 3], vec![0, 1, 0], 2).unwrap();
        assert_eq!(mlp.accuracy(&data), 0.0);
    }

    #[test]
    fn sparsity_reflects_zeroed_weights() {
        let mut mlp = tiny_mlp();
        assert_eq!(mlp.sparsity(), 0.0);
        let total = mlp.weight_count();
        // Zero out the entire first layer.
        let first_count = mlp.layers()[0].weight_count();
        mlp.layers_mut()[0].weights_mut().map_inplace(|_| 0.0);
        let expected = first_count as f64 / total as f64;
        assert!((mlp.sparsity() - expected).abs() < 1e-9);
    }

    #[test]
    fn flatten_weights_has_weight_count_entries() {
        let mlp = tiny_mlp();
        assert_eq!(mlp.flatten_weights().len(), mlp.weight_count());
    }

    #[test]
    fn backward_returns_one_gradient_per_layer() {
        let mlp = tiny_mlp();
        let x = Matrix::zeros(2, 3);
        let (logits, caches) = mlp.forward_with_caches(&x).unwrap();
        let grad = Matrix::filled(logits.rows(), logits.cols(), 0.1);
        let grads = mlp.backward(&caches, &grad).unwrap();
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0].weights.shape(), (3, 5));
        assert_eq!(grads[1].weights.shape(), (5, 2));
    }

    #[test]
    fn apply_updates_validates_count() {
        let mut mlp = tiny_mlp();
        assert!(mlp.apply_updates(&[]).is_err());
    }

    #[test]
    fn serde_round_trip_preserves_model() {
        let mlp = tiny_mlp();
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(back, mlp);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn end_to_end_gradient_matches_finite_difference() {
        use crate::loss::Loss;
        let mut mlp = tiny_mlp();
        let x = Matrix::from_rows(&[vec![0.4, -0.2, 0.8]]).unwrap();
        let targets = [1usize];
        let (logits, caches) = mlp.forward_with_caches(&x).unwrap();
        let grad_logits = Loss::SoftmaxCrossEntropy
            .gradient(&logits, &targets)
            .unwrap();
        let grads = mlp.backward(&caches, &grad_logits).unwrap();

        let eps = 1e-2_f32;
        // Check a handful of weights in each layer.
        for li in 0..2 {
            let (rows, cols) = mlp.layers()[li].weights().shape();
            for &(r, c) in &[(0usize, 0usize), (rows - 1, cols - 1)] {
                let orig = mlp.layers()[li].weights().get(r, c);
                mlp.layers_mut()[li].weights_mut().set(r, c, orig + eps);
                let lp = Loss::SoftmaxCrossEntropy
                    .compute(&mlp.forward(&x).unwrap(), &targets)
                    .unwrap();
                mlp.layers_mut()[li].weights_mut().set(r, c, orig - eps);
                let lm = Loss::SoftmaxCrossEntropy
                    .compute(&mlp.forward(&x).unwrap(), &targets)
                    .unwrap();
                mlp.layers_mut()[li].weights_mut().set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[li].weights.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 2e-2,
                    "layer {li} weight ({r},{c}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }
}
