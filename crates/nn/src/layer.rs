//! Dense (fully-connected) layer with forward and backward passes.

use crate::activation::Activation;
use crate::error::NnError;
use crate::init::WeightInit;
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer computing `y = act(x W + b)`.
///
/// Weights are stored as an `inputs x outputs` matrix so that a batch of
/// samples (one per row) can be pushed through with a single matrix product.
///
/// # Example
///
/// ```
/// use pmlp_nn::{DenseLayer, Activation, WeightInit, Matrix};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), pmlp_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(3);
/// let layer = DenseLayer::new(3, 2, Activation::ReLU, WeightInit::XavierUniform, &mut rng)?;
/// let x = Matrix::from_rows(&[vec![0.1, -0.2, 0.3]])?;
/// let y = layer.forward(&x)?;
/// assert_eq!(y.shape(), (1, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    weights: Matrix,
    biases: Vec<f32>,
    activation: Activation,
}

/// Everything the backward pass needs that was computed during the forward
/// pass of one layer.
#[derive(Debug, Clone)]
pub struct LayerCache {
    /// The layer input (batch x inputs).
    pub input: Matrix,
    /// Pre-activation values `x W + b` (batch x outputs).
    pub pre_activation: Matrix,
}

/// Gradients of the loss with respect to one layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGradient {
    /// Gradient w.r.t. the weight matrix (inputs x outputs).
    pub weights: Matrix,
    /// Gradient w.r.t. the bias vector (length = outputs).
    pub biases: Vec<f32>,
}

/// Reusable per-layer backprop buffers: the transposed weight and input
/// matrices the backward pass needs every batch. Holding them across steps
/// (see [`crate::Trainer`]) removes two allocations per layer per batch —
/// the transposed *values* are recomputed (weights change every update), but
/// into the same buffers.
#[derive(Debug, Clone)]
pub struct BackpropScratch {
    weights_t: Matrix,
    input_t: Matrix,
}

impl Default for BackpropScratch {
    fn default() -> Self {
        BackpropScratch {
            weights_t: Matrix::zeros(0, 0),
            input_t: Matrix::zeros(0, 0),
        }
    }
}

impl DenseLayer {
    /// Creates a layer with `inputs` inputs and `outputs` outputs.
    ///
    /// Biases start at zero; weights follow `init`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidDimension`] when `inputs` or `outputs` is zero.
    pub fn new<R: Rng + ?Sized>(
        inputs: usize,
        outputs: usize,
        activation: Activation,
        init: WeightInit,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        if inputs == 0 || outputs == 0 {
            return Err(NnError::InvalidDimension {
                context: format!("dense layer must have non-zero size, got {inputs}x{outputs}"),
            });
        }
        Ok(DenseLayer {
            weights: init.matrix(inputs, outputs, rng),
            biases: vec![0.0; outputs],
            activation,
        })
    }

    /// Builds a layer directly from a weight matrix and bias vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `biases.len() != weights.cols()`.
    pub fn from_parameters(
        weights: Matrix,
        biases: Vec<f32>,
        activation: Activation,
    ) -> Result<Self, NnError> {
        if biases.len() != weights.cols() {
            return Err(NnError::ShapeMismatch {
                context: "dense layer biases".into(),
                left: weights.shape(),
                right: (1, biases.len()),
            });
        }
        Ok(DenseLayer {
            weights,
            biases,
            activation,
        })
    }

    /// Number of inputs (fan-in).
    pub fn inputs(&self) -> usize {
        self.weights.rows()
    }

    /// Number of outputs (fan-out, i.e. neurons in this layer).
    pub fn outputs(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable access to the weight matrix (inputs x outputs).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable access to the weight matrix (used by minimization passes that
    /// rewrite weights in place, e.g. pruning masks and clustering).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Immutable access to the bias vector.
    pub fn biases(&self) -> &[f32] {
        &self.biases
    }

    /// Mutable access to the bias vector.
    pub fn biases_mut(&mut self) -> &mut [f32] {
        &mut self.biases
    }

    /// Replaces the activation function.
    pub fn set_activation(&mut self, activation: Activation) {
        self.activation = activation;
    }

    /// Total number of weight parameters (excluding biases).
    pub fn weight_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of weights equal to exactly zero (pruned connections).
    pub fn zero_weight_count(&self) -> usize {
        self.weights.count_zeros()
    }

    /// Forward pass for a batch: `act(x W + b)`.
    ///
    /// Pure inference path: one matrix product, bias and activation applied
    /// in place — no cache bookkeeping and no intermediate copies.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `x.cols() != self.inputs()`.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut pre = x.matmul(&self.weights)?;
        pre.add_row_broadcast_inplace(&self.biases)?;
        self.activation.apply_matrix_inplace(&mut pre);
        Ok(pre)
    }

    /// Forward pass that also returns the cache needed for backprop.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `x.cols() != self.inputs()`.
    pub fn forward_with_cache(&self, x: &Matrix) -> Result<(Matrix, LayerCache), NnError> {
        let mut cache = LayerCache {
            input: Matrix::zeros(0, 0),
            pre_activation: Matrix::zeros(0, 0),
        };
        let out = self.forward_with_cache_into(x, &mut cache)?;
        Ok((out, cache))
    }

    /// Forward pass writing the backprop cache into a caller-owned
    /// [`LayerCache`], reusing its buffers — the training loop keeps one
    /// cache per layer alive across batches instead of reallocating the
    /// input/pre-activation copies every step.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `x.cols() != self.inputs()`.
    pub fn forward_with_cache_into(
        &self,
        x: &Matrix,
        cache: &mut LayerCache,
    ) -> Result<Matrix, NnError> {
        cache.input.clone_from(x);
        x.matmul_into(&self.weights, &mut cache.pre_activation)?;
        cache
            .pre_activation
            .add_row_broadcast_inplace(&self.biases)?;
        // Single pass: allocate the activated output directly instead of
        // cloning the pre-activations and mapping in place.
        Ok(cache.pre_activation.map(|x| self.activation.apply(x)))
    }

    /// Backward pass.
    ///
    /// `grad_output` is the gradient of the loss w.r.t. this layer's
    /// activations; returns the gradient w.r.t. the layer input together with
    /// the parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `grad_output` does not match the
    /// cached pre-activation shape.
    pub fn backward(
        &self,
        cache: &LayerCache,
        grad_output: &Matrix,
    ) -> Result<(Matrix, LayerGradient), NnError> {
        let mut scratch = BackpropScratch::default();
        self.backward_with_scratch(cache, grad_output.clone(), &mut scratch)
    }

    /// Backward pass reusing caller-owned transpose buffers.
    ///
    /// Identical math to [`DenseLayer::backward`], but the transposed weight
    /// and input matrices are written into `scratch` instead of freshly
    /// allocated — the trainer holds one scratch per layer for the whole run.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `grad_output` does not match the
    /// cached pre-activation shape.
    pub fn backward_with_scratch(
        &self,
        cache: &LayerCache,
        grad_output: Matrix,
        scratch: &mut BackpropScratch,
    ) -> Result<(Matrix, LayerGradient), NnError> {
        let (dpre, grads) = self.backward_core(cache, grad_output, scratch)?;
        // dL/dx = dpre W^T
        self.weights.transpose_into(&mut scratch.weights_t);
        let grad_input = dpre.matmul(&scratch.weights_t)?;
        Ok((grad_input, grads))
    }

    /// [`DenseLayer::backward_with_scratch`] without the input-gradient
    /// product — the first layer of a network has no upstream consumer for
    /// `dL/dx`, and that product is a full quarter of its backward matmul
    /// work.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DenseLayer::backward_with_scratch`].
    pub fn backward_params_only(
        &self,
        cache: &LayerCache,
        grad_output: Matrix,
        scratch: &mut BackpropScratch,
    ) -> Result<LayerGradient, NnError> {
        Ok(self.backward_core(cache, grad_output, scratch)?.1)
    }

    /// The shared backward math: validates shapes, fuses the activation
    /// derivative into the owned gradient in place (yielding `dL/dpre`) and
    /// computes the parameter gradients.
    fn backward_core(
        &self,
        cache: &LayerCache,
        grad_output: Matrix,
        scratch: &mut BackpropScratch,
    ) -> Result<(Matrix, LayerGradient), NnError> {
        if grad_output.shape() != cache.pre_activation.shape() {
            return Err(NnError::ShapeMismatch {
                context: "dense backward".into(),
                left: grad_output.shape(),
                right: cache.pre_activation.shape(),
            });
        }
        // dL/dpre = dL/dout * act'(pre), fused in place into the owned
        // gradient (the separate derivative matrix + hadamard allocated two
        // intermediates per batch, plus a clone of the incoming gradient).
        let mut dpre = grad_output;
        for (g, &pre) in dpre
            .as_mut_slice()
            .iter_mut()
            .zip(cache.pre_activation.as_slice())
        {
            *g *= self.activation.derivative(pre);
        }
        // dL/dW = x^T dpre ; dL/db = column sums of dpre
        cache.input.transpose_into(&mut scratch.input_t);
        let grad_weights = scratch.input_t.matmul(&dpre)?;
        let grad_biases = dpre.sum_rows();
        Ok((
            dpre,
            LayerGradient {
                weights: grad_weights,
                biases: grad_biases,
            },
        ))
    }

    /// Applies a parameter update `p <- p - lr * g` (plain SGD step, used by
    /// the optimizers in [`crate::optimizer`] after they have transformed the
    /// raw gradients).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the gradient shapes do not
    /// match the layer's parameters.
    pub fn apply_update(&mut self, update: &LayerGradient) -> Result<(), NnError> {
        if update.weights.shape() != self.weights.shape() {
            return Err(NnError::ShapeMismatch {
                context: "weight update".into(),
                left: update.weights.shape(),
                right: self.weights.shape(),
            });
        }
        if update.biases.len() != self.biases.len() {
            return Err(NnError::ShapeMismatch {
                context: "bias update".into(),
                left: (1, update.biases.len()),
                right: (1, self.biases.len()),
            });
        }
        // In place: this runs once per layer per batch, and the allocating
        // `sub_elem` showed up in training profiles.
        for (w, u) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(update.weights.as_slice())
        {
            *w -= u;
        }
        for (b, u) in self.biases.iter_mut().zip(update.biases.iter()) {
            *b -= u;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(inputs: usize, outputs: usize, act: Activation) -> DenseLayer {
        let mut rng = StdRng::seed_from_u64(11);
        DenseLayer::new(inputs, outputs, act, WeightInit::XavierUniform, &mut rng).unwrap()
    }

    #[test]
    fn rejects_zero_sized_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(DenseLayer::new(0, 4, Activation::ReLU, WeightInit::Zeros, &mut rng).is_err());
        assert!(DenseLayer::new(4, 0, Activation::ReLU, WeightInit::Zeros, &mut rng).is_err());
    }

    #[test]
    fn forward_shape_is_batch_by_outputs() {
        let l = layer(5, 3, Activation::ReLU);
        let x = Matrix::zeros(7, 5);
        assert_eq!(l.forward(&x).unwrap().shape(), (7, 3));
    }

    #[test]
    fn forward_rejects_wrong_input_width() {
        let l = layer(5, 3, Activation::ReLU);
        let x = Matrix::zeros(7, 4);
        assert!(l.forward(&x).is_err());
    }

    #[test]
    fn identity_layer_with_known_weights_computes_affine_map() {
        let w = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
        let l = DenseLayer::from_parameters(w, vec![1.0, -1.0], Activation::Identity).unwrap();
        let x = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.row(0), &[4.0, 7.0]);
    }

    #[test]
    fn relu_layer_zeroes_negative_preactivations() {
        let w = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let l = DenseLayer::from_parameters(w, vec![0.0], Activation::ReLU).unwrap();
        let x = Matrix::from_rows(&[vec![-5.0], vec![5.0]]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.column(0), vec![0.0, 5.0]);
    }

    #[test]
    fn from_parameters_validates_bias_length() {
        let w = Matrix::zeros(2, 3);
        assert!(DenseLayer::from_parameters(w, vec![0.0; 2], Activation::ReLU).is_err());
    }

    #[test]
    fn backward_gradient_matches_finite_difference() {
        // Single sample, identity activation, check dL/dW numerically with
        // L = sum(y).
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = DenseLayer::new(
            3,
            2,
            Activation::Identity,
            WeightInit::XavierUniform,
            &mut rng,
        )
        .unwrap();
        let x = Matrix::from_rows(&[vec![0.3, -0.7, 0.2]]).unwrap();
        let (_, cache) = l.forward_with_cache(&x).unwrap();
        let grad_out = Matrix::filled(1, 2, 1.0);
        let (_, grads) = l.backward(&cache, &grad_out).unwrap();

        let eps = 1e-3_f32;
        for r in 0..3 {
            for c in 0..2 {
                let orig = l.weights().get(r, c);
                l.weights_mut().set(r, c, orig + eps);
                let plus = l.forward(&x).unwrap().sum();
                l.weights_mut().set(r, c, orig - eps);
                let minus = l.forward(&x).unwrap().sum();
                l.weights_mut().set(r, c, orig);
                let numeric = (plus - minus) / (2.0 * eps);
                let analytic = grads.weights.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "dW[{r},{c}] numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn backward_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(6);
        let l =
            DenseLayer::new(3, 2, Activation::Tanh, WeightInit::XavierUniform, &mut rng).unwrap();
        let x = Matrix::from_rows(&[vec![0.5, -0.1, 0.9]]).unwrap();
        let (_, cache) = l.forward_with_cache(&x).unwrap();
        let grad_out = Matrix::filled(1, 2, 1.0);
        let (grad_in, _) = l.backward(&cache, &grad_out).unwrap();

        let eps = 1e-3_f32;
        for c in 0..3 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut xm = x.clone();
            xm.set(0, c, x.get(0, c) - eps);
            let numeric =
                (l.forward(&xp).unwrap().sum() - l.forward(&xm).unwrap().sum()) / (2.0 * eps);
            assert!((numeric - grad_in.get(0, c)).abs() < 1e-2);
        }
    }

    #[test]
    fn apply_update_moves_parameters_in_negative_gradient_direction() {
        let w = Matrix::filled(1, 1, 1.0);
        let mut l = DenseLayer::from_parameters(w, vec![1.0], Activation::Identity).unwrap();
        let update = LayerGradient {
            weights: Matrix::filled(1, 1, 0.25),
            biases: vec![0.5],
        };
        l.apply_update(&update).unwrap();
        assert_eq!(l.weights().get(0, 0), 0.75);
        assert_eq!(l.biases()[0], 0.5);
    }

    #[test]
    fn apply_update_rejects_mismatched_shapes() {
        let mut l = layer(2, 2, Activation::ReLU);
        let bad = LayerGradient {
            weights: Matrix::zeros(3, 2),
            biases: vec![0.0; 2],
        };
        assert!(l.apply_update(&bad).is_err());
    }

    #[test]
    fn zero_weight_count_tracks_pruning() {
        let mut l = layer(4, 4, Activation::ReLU);
        assert_eq!(l.zero_weight_count(), 0);
        l.weights_mut().set(0, 0, 0.0);
        l.weights_mut().set(1, 2, 0.0);
        assert_eq!(l.zero_weight_count(), 2);
    }
}
