//! Mini-batch training loop with optional early stopping and weight
//! constraints (used by the minimization passes for masked/clustered
//! retraining).

use crate::dataset::Dataset;
use crate::error::NnError;
use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::optimizer::{Adam, Optimizer};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (clamped to at least 1).
    pub batch_size: usize,
    /// Initial learning rate handed to the optimizer.
    pub learning_rate: f32,
    /// Loss function.
    pub loss: Loss,
    /// Multiplicative learning-rate decay applied after each epoch
    /// (`1.0` disables decay).
    pub lr_decay: f32,
    /// Stop early when the validation accuracy has not improved for this many
    /// epochs (`None` disables early stopping; requires a validation set).
    pub patience: Option<usize>,
    /// L2 weight-decay coefficient added to the gradients (`0.0` disables).
    pub weight_decay: f32,
    /// Record the full-train-set accuracy in [`TrainReport::train_accuracy`]
    /// every epoch (`true` by default). When a validation set drives
    /// best-model tracking this is pure reporting — inner-loop fine-tuning
    /// (QAT, pruning, clustering) disables it, since the extra full forward
    /// pass per epoch is a measurable share of each candidate evaluation.
    /// Ignored (accuracy is always computed) when no validation set is given,
    /// because best-model tracking then needs it.
    pub track_train_accuracy: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            batch_size: 32,
            learning_rate: 0.01,
            loss: Loss::SoftmaxCrossEntropy,
            lr_decay: 1.0,
            patience: None,
            weight_decay: 0.0,
            track_train_accuracy: true,
        }
    }
}

impl TrainConfig {
    /// A configuration tuned for the fast fine-tuning passes used inside the
    /// genetic-algorithm loop (few epochs, slightly higher learning rate, no
    /// per-epoch full-train-set accuracy pass).
    pub fn fine_tune(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            learning_rate: 0.02,
            track_train_accuracy: false,
            ..TrainConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when any hyper-parameter is outside
    /// its admissible range.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.epochs == 0 {
            return Err(NnError::InvalidConfig {
                context: "epochs must be >= 1".into(),
            });
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(NnError::InvalidConfig {
                context: format!("learning_rate must be positive, got {}", self.learning_rate),
            });
        }
        if self.lr_decay <= 0.0 || self.lr_decay > 1.0 {
            return Err(NnError::InvalidConfig {
                context: format!("lr_decay must be in (0,1], got {}", self.lr_decay),
            });
        }
        if self.weight_decay < 0.0 {
            return Err(NnError::InvalidConfig {
                context: format!("weight_decay must be >= 0, got {}", self.weight_decay),
            });
        }
        Ok(())
    }
}

/// Per-epoch history and final metrics of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Training accuracy per epoch (empty when
    /// [`TrainConfig::track_train_accuracy`] is off and a validation set was
    /// supplied).
    pub train_accuracy: Vec<f64>,
    /// Validation accuracy per epoch (empty when no validation set given).
    pub val_accuracy: Vec<f64>,
    /// Number of epochs actually run (may be less than configured when early
    /// stopping triggers).
    pub epochs_run: usize,
    /// Best validation accuracy seen (or best training accuracy when no
    /// validation set was supplied).
    pub best_accuracy: f64,
}

/// A hook invoked after every parameter update, letting callers constrain the
/// weights (re-apply pruning masks, snap to cluster centroids, fake-quantize).
///
/// The hook receives the network after the optimizer update has been applied.
pub trait WeightConstraint {
    /// Re-establishes the constraint on the model in place.
    fn apply(&mut self, mlp: &mut Mlp);
}

/// A no-op constraint used by plain training.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoConstraint;

impl WeightConstraint for NoConstraint {
    fn apply(&mut self, _mlp: &mut Mlp) {}
}

impl<F: FnMut(&mut Mlp)> WeightConstraint for F {
    fn apply(&mut self, mlp: &mut Mlp) {
        self(mlp)
    }
}

/// Mini-batch gradient-descent trainer.
///
/// # Example
///
/// ```
/// use pmlp_nn::{Trainer, TrainConfig};
/// let trainer = Trainer::new(TrainConfig { epochs: 5, ..TrainConfig::default() });
/// assert_eq!(trainer.config().epochs, 5);
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `mlp` on `train`, optionally tracking accuracy on `validation`.
    ///
    /// Uses Adam with the configured learning rate. Equivalent to
    /// [`Trainer::fit_constrained`] with [`NoConstraint`].
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid or when dataset and
    /// model shapes disagree.
    pub fn fit<R: Rng + ?Sized>(
        &self,
        mlp: &mut Mlp,
        train: &Dataset,
        validation: Option<&Dataset>,
        rng: &mut R,
    ) -> Result<TrainReport, NnError> {
        self.fit_constrained(mlp, train, validation, &mut NoConstraint, rng)
    }

    /// Trains `mlp` while re-applying `constraint` after every update.
    ///
    /// This is the entry point used by quantization-aware training (the
    /// constraint fake-quantizes the weights), pruning fine-tuning (the
    /// constraint re-applies the sparsity mask) and clustering fine-tuning
    /// (the constraint snaps weights back onto their shared centroids).
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid or when dataset and
    /// model shapes disagree.
    pub fn fit_constrained<R, C>(
        &self,
        mlp: &mut Mlp,
        train: &Dataset,
        validation: Option<&Dataset>,
        constraint: &mut C,
        rng: &mut R,
    ) -> Result<TrainReport, NnError>
    where
        R: Rng + ?Sized,
        C: WeightConstraint + ?Sized,
    {
        self.config.validate()?;
        if train.feature_count() != mlp.input_size() {
            return Err(NnError::ShapeMismatch {
                context: "training features vs model input".into(),
                left: (train.len(), train.feature_count()),
                right: (1, mlp.input_size()),
            });
        }
        if train.class_count() > mlp.output_size() {
            return Err(NnError::InvalidConfig {
                context: format!(
                    "dataset has {} classes but model only outputs {}",
                    train.class_count(),
                    mlp.output_size()
                ),
            });
        }

        let mut optimizer = Adam::new(self.config.learning_rate);
        let mut report = TrainReport::default();
        let mut best_accuracy = 0.0_f64;
        let mut best_model = mlp.clone();
        let mut epochs_since_best = 0usize;

        // Ensure the model starts from a constraint-satisfying point.
        constraint.apply(mlp);

        // Reusable hot-loop buffers, all alive for the whole run: one
        // shuffled index permutation per epoch, one gathered feature/label
        // batch (reallocated only when the batch geometry changes — the short
        // final chunk of an epoch), the per-layer forward caches and the
        // per-layer backprop transpose scratch.
        let batch_size = self.config.batch_size.max(1);
        let mut shuffled: Vec<usize> = Vec::with_capacity(train.len());
        let mut batch_features = crate::matrix::Matrix::zeros(0, train.feature_count());
        let mut batch_labels: Vec<usize> = Vec::with_capacity(batch_size);
        let mut caches: Vec<crate::layer::LayerCache> = Vec::new();
        let mut scratch = crate::mlp::MlpScratch::default();

        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0_f32;
            let mut batches = 0usize;
            train.shuffle_indices_into(&mut shuffled, rng);
            for batch in shuffled.chunks(batch_size) {
                train.gather_batch(batch, &mut batch_features, &mut batch_labels);
                let logits = mlp.forward_with_caches_into(&batch_features, &mut caches)?;
                let (batch_loss, grad_logits) = self
                    .config
                    .loss
                    .compute_with_gradient(&logits, &batch_labels)?;
                epoch_loss += batch_loss;
                batches += 1;
                let mut grads = mlp.backward_with_scratch(&caches, grad_logits, &mut scratch)?;
                if self.config.weight_decay > 0.0 {
                    for (grad, layer) in grads.iter_mut().zip(mlp.layers()) {
                        grad.weights = grad
                            .weights
                            .add_elem(&layer.weights().scale(self.config.weight_decay))?;
                    }
                }
                let updates: Vec<_> = grads
                    .iter()
                    .enumerate()
                    .map(|(i, g)| optimizer.step(i, g))
                    .collect();
                mlp.apply_updates(&updates)?;
                constraint.apply(mlp);
            }
            report.train_loss.push(if batches > 0 {
                epoch_loss / batches as f32
            } else {
                0.0
            });
            // The full-train-set accuracy pass is skippable only when a
            // validation set drives best-model tracking.
            if self.config.track_train_accuracy || validation.is_none() {
                report.train_accuracy.push(mlp.accuracy(train));
            }
            report.epochs_run = epoch + 1;

            let tracked_acc = match validation {
                Some(val) => {
                    let acc = mlp.accuracy(val);
                    report.val_accuracy.push(acc);
                    acc
                }
                None => *report
                    .train_accuracy
                    .last()
                    .expect("train accuracy recorded when no validation set"),
            };

            if tracked_acc > best_accuracy {
                best_accuracy = tracked_acc;
                best_model = mlp.clone();
                epochs_since_best = 0;
            } else {
                epochs_since_best += 1;
            }

            if let Some(patience) = self.config.patience {
                if validation.is_some() && epochs_since_best > patience {
                    break;
                }
            }

            if self.config.lr_decay < 1.0 {
                let lr = optimizer.learning_rate() * self.config.lr_decay;
                optimizer.set_learning_rate(lr);
            }
        }

        // Keep the best model seen (matters when early stopping or when the
        // last epochs overfit).
        if best_accuracy > 0.0 {
            *mlp = best_model;
        }
        report.best_accuracy = best_accuracy;
        Ok(report)
    }
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer::new(TrainConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::MlpBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two well-separated Gaussian-ish blobs, linearly separable.
    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -1.0 } else { 1.0 };
            xs.push(vec![
                center + rng.gen_range(-0.3_f32..0.3),
                center + rng.gen_range(-0.3_f32..0.3),
            ]);
            ys.push(class);
        }
        Dataset::from_rows(xs, ys, 2).unwrap()
    }

    fn xor_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.gen_range(0.0..1.0_f32);
            let b = rng.gen_range(0.0..1.0_f32);
            let label = usize::from((a > 0.5) != (b > 0.5));
            xs.push(vec![a, b]);
            ys.push(label);
        }
        Dataset::from_rows(xs, ys, 2).unwrap()
    }

    #[test]
    fn config_validation_catches_bad_values() {
        assert!(TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        }
        .validate()
        .is_err());
        assert!(TrainConfig {
            learning_rate: -1.0,
            ..TrainConfig::default()
        }
        .validate()
        .is_err());
        assert!(TrainConfig {
            lr_decay: 1.5,
            ..TrainConfig::default()
        }
        .validate()
        .is_err());
        assert!(TrainConfig {
            weight_decay: -0.1,
            ..TrainConfig::default()
        }
        .validate()
        .is_err());
        assert!(TrainConfig::default().validate().is_ok());
    }

    #[test]
    fn trains_linearly_separable_blobs_to_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(100);
        let data = blobs(200, 7);
        let mut mlp = MlpBuilder::new(2)
            .hidden(4, Activation::ReLU)
            .output(2)
            .build(&mut rng)
            .unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut mlp, &data, None, &mut rng).unwrap();
        assert!(
            report.best_accuracy > 0.95,
            "accuracy {}",
            report.best_accuracy
        );
        assert_eq!(report.train_loss.len(), report.epochs_run);
    }

    #[test]
    fn trains_xor_with_hidden_layer() {
        let mut rng = StdRng::seed_from_u64(201);
        let data = xor_data(400, 9);
        let mut mlp = MlpBuilder::new(2)
            .hidden(12, Activation::ReLU)
            .output(2)
            .build(&mut rng)
            .unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 120,
            learning_rate: 0.02,
            batch_size: 32,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut mlp, &data, None, &mut rng).unwrap();
        assert!(
            report.best_accuracy > 0.9,
            "xor accuracy {}",
            report.best_accuracy
        );
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut rng = StdRng::seed_from_u64(300);
        let data = blobs(200, 11);
        let mut mlp = MlpBuilder::new(2)
            .hidden(6, Activation::ReLU)
            .output(2)
            .build(&mut rng)
            .unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut mlp, &data, None, &mut rng).unwrap();
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn early_stopping_limits_epochs() {
        let mut rng = StdRng::seed_from_u64(400);
        let data = blobs(200, 13);
        let (train, val) = data.stratified_split(0.8, &mut rng).unwrap();
        let mut mlp = MlpBuilder::new(2)
            .hidden(4, Activation::ReLU)
            .output(2)
            .build(&mut rng)
            .unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 200,
            patience: Some(3),
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut mlp, &train, Some(&val), &mut rng).unwrap();
        assert!(report.epochs_run < 200, "early stopping never triggered");
        assert_eq!(report.val_accuracy.len(), report.epochs_run);
    }

    #[test]
    fn rejects_feature_width_mismatch() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = blobs(20, 1);
        let mut mlp = MlpBuilder::new(5)
            .hidden(4, Activation::ReLU)
            .output(2)
            .build(&mut rng)
            .unwrap();
        let trainer = Trainer::default();
        assert!(trainer.fit(&mut mlp, &data, None, &mut rng).is_err());
    }

    #[test]
    fn rejects_too_few_model_outputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = blobs(20, 1); // two classes
        let mut mlp = MlpBuilder::new(2).output(1).build(&mut rng).unwrap();
        let trainer = Trainer::default();
        assert!(trainer.fit(&mut mlp, &data, None, &mut rng).is_err());
    }

    #[test]
    fn constraint_is_enforced_throughout_training() {
        // Constraint: the (0,0) weight of layer 0 must stay exactly zero.
        let mut rng = StdRng::seed_from_u64(17);
        let data = blobs(100, 3);
        let mut mlp = MlpBuilder::new(2)
            .hidden(4, Activation::ReLU)
            .output(2)
            .build(&mut rng)
            .unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        });
        let mut constraint = |m: &mut Mlp| {
            m.layers_mut()[0].weights_mut().set(0, 0, 0.0);
        };
        trainer
            .fit_constrained(&mut mlp, &data, None, &mut constraint, &mut rng)
            .unwrap();
        assert_eq!(mlp.layers()[0].weights().get(0, 0), 0.0);
    }

    #[test]
    fn weight_decay_shrinks_weight_norm() {
        let mut rng = StdRng::seed_from_u64(19);
        let data = blobs(100, 5);
        let build = |rng: &mut StdRng| {
            MlpBuilder::new(2)
                .hidden(8, Activation::ReLU)
                .output(2)
                .build(rng)
                .unwrap()
        };
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut mlp_plain = build(&mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(21);
        let mut mlp_decay = build(&mut rng_b);

        let plain = Trainer::new(TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        });
        let decay = Trainer::new(TrainConfig {
            epochs: 30,
            weight_decay: 0.05,
            ..TrainConfig::default()
        });
        plain.fit(&mut mlp_plain, &data, None, &mut rng).unwrap();
        decay.fit(&mut mlp_decay, &data, None, &mut rng).unwrap();

        let norm = |m: &Mlp| -> f32 {
            m.layers()
                .iter()
                .map(|l| l.weights().frobenius_norm())
                .sum()
        };
        assert!(norm(&mlp_decay) < norm(&mlp_plain));
    }

    #[test]
    fn deterministic_given_same_seed() {
        let data = blobs(100, 23);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut mlp = MlpBuilder::new(2)
                .hidden(4, Activation::ReLU)
                .output(2)
                .build(&mut rng)
                .unwrap();
            let trainer = Trainer::new(TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            });
            trainer.fit(&mut mlp, &data, None, &mut rng).unwrap();
            mlp.flatten_weights()
        };
        assert_eq!(run(77), run(77));
    }
}
