//! Gradient-descent optimizers.
//!
//! An [`Optimizer`] turns raw parameter gradients (one [`LayerGradient`] per
//! layer) into parameter *updates* that the [`crate::mlp::Mlp`] then subtracts
//! from its parameters. Keeping the transformation separate from the
//! application lets the quantization-aware and pruning-aware trainers in
//! `pmlp-minimize` intercept updates (e.g. to re-apply sparsity masks).

use crate::layer::LayerGradient;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Strategy that converts gradients into parameter updates.
///
/// Implementations may carry per-layer state (momentum buffers, Adam moments);
/// the state is indexed by the layer's position, so one optimizer instance must
/// only ever be used with a single network.
pub trait Optimizer {
    /// Transforms the raw gradient of layer `layer_index` into the update that
    /// will be subtracted from the parameters.
    fn step(&mut self, layer_index: usize, gradient: &LayerGradient) -> LayerGradient;

    /// Resets any internal state (momentum buffers etc.).
    fn reset(&mut self);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by learning-rate schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent: `update = lr * grad`.
///
/// # Example
///
/// ```
/// use pmlp_nn::{Sgd, Optimizer};
/// let opt = Sgd::new(0.05);
/// assert_eq!(opt.learning_rate(), 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates a new SGD optimizer with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd::new(0.1)
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, _layer_index: usize, gradient: &LayerGradient) -> LayerGradient {
        LayerGradient {
            weights: gradient.weights.scale(self.lr),
            biases: gradient.biases.iter().map(|g| g * self.lr).collect(),
        }
    }

    fn reset(&mut self) {}

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// SGD with classical momentum: `v <- mu v + grad; update = lr * v`.
#[derive(Debug, Clone, Default)]
pub struct Momentum {
    lr: f32,
    mu: f32,
    velocity: Vec<Option<LayerGradient>>,
}

impl Momentum {
    /// Creates a momentum optimizer with learning rate `lr` and momentum `mu`.
    pub fn new(lr: f32, mu: f32) -> Self {
        Momentum {
            lr,
            mu,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, layer_index: usize, gradient: &LayerGradient) -> LayerGradient {
        if self.velocity.len() <= layer_index {
            self.velocity.resize(layer_index + 1, None);
        }
        let new_velocity = match &self.velocity[layer_index] {
            Some(prev) => LayerGradient {
                weights: prev
                    .weights
                    .scale(self.mu)
                    .add_elem(&gradient.weights)
                    .expect("momentum buffer shape drift"),
                biases: prev
                    .biases
                    .iter()
                    .zip(gradient.biases.iter())
                    .map(|(v, g)| self.mu * v + g)
                    .collect(),
            },
            None => gradient.clone(),
        };
        let update = LayerGradient {
            weights: new_velocity.weights.scale(self.lr),
            biases: new_velocity.biases.iter().map(|v| v * self.lr).collect(),
        };
        self.velocity[layer_index] = Some(new_velocity);
        update
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    t: u64,
    first_moment: Vec<Option<LayerGradient>>,
    second_moment: Vec<Option<LayerGradient>>,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and the standard
    /// default hyper-parameters (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Adam::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with fully explicit hyper-parameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, epsilon: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            epsilon,
            t: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    fn ensure_len(&mut self, layer_index: usize) {
        if self.first_moment.len() <= layer_index {
            self.first_moment.resize(layer_index + 1, None);
            self.second_moment.resize(layer_index + 1, None);
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Adam::new(0.01)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, layer_index: usize, gradient: &LayerGradient) -> LayerGradient {
        self.ensure_len(layer_index);
        // Advance the timestep only once per epoch-step of layer 0 so that all
        // layers in one backward pass share the same bias correction.
        if layer_index == 0 {
            self.t += 1;
        }
        let t = self.t.max(1) as f32;

        // Moment buffers are updated in place (hot path: one step per layer
        // per batch); the arithmetic matches the textbook formulation
        // exactly, element by element.
        if self.first_moment[layer_index].is_none() {
            self.first_moment[layer_index] = Some(LayerGradient {
                weights: Matrix::zeros(gradient.weights.rows(), gradient.weights.cols()),
                biases: vec![0.0; gradient.biases.len()],
            });
            self.second_moment[layer_index] = Some(LayerGradient {
                weights: Matrix::zeros(gradient.weights.rows(), gradient.weights.cols()),
                biases: vec![0.0; gradient.biases.len()],
            });
        }
        let m = self.first_moment[layer_index]
            .as_mut()
            .expect("adam m initialized");
        let v = self.second_moment[layer_index]
            .as_mut()
            .expect("adam v initialized");
        assert_eq!(
            m.weights.shape(),
            gradient.weights.shape(),
            "adam moment shape drift"
        );

        let (beta1, beta2) = (self.beta1, self.beta2);
        for (m, &g) in m
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(gradient.weights.as_slice())
        {
            *m = beta1 * *m + (1.0 - beta1) * g;
        }
        for (m, &g) in m.biases.iter_mut().zip(gradient.biases.iter()) {
            *m = beta1 * *m + (1.0 - beta1) * g;
        }
        for (v, &g) in v
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(gradient.weights.as_slice())
        {
            *v = beta2 * *v + (g * g) * (1.0 - beta2);
        }
        for (v, &g) in v.biases.iter_mut().zip(gradient.biases.iter()) {
            *v = beta2 * *v + (1.0 - beta2) * g * g;
        }

        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let lr = self.lr;
        let eps = self.epsilon;
        let adamize = |(m, v): (&f32, &f32)| -> f32 {
            let m_hat = m / bias1;
            let v_hat = v / bias2;
            lr * m_hat / (v_hat.sqrt() + eps)
        };

        let update_weights = Matrix::from_vec(
            gradient.weights.rows(),
            gradient.weights.cols(),
            m.weights
                .as_slice()
                .iter()
                .zip(v.weights.as_slice())
                .map(adamize)
                .collect(),
        )
        .expect("adam update shape");
        let update_biases: Vec<f32> = m.biases.iter().zip(v.biases.iter()).map(adamize).collect();

        LayerGradient {
            weights: update_weights,
            biases: update_biases,
        }
    }

    fn reset(&mut self) {
        self.t = 0;
        self.first_moment.clear();
        self.second_moment.clear();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(value: f32) -> LayerGradient {
        LayerGradient {
            weights: Matrix::filled(2, 2, value),
            biases: vec![value; 2],
        }
    }

    #[test]
    fn sgd_scales_gradient_by_learning_rate() {
        let mut opt = Sgd::new(0.5);
        let update = opt.step(0, &gradient(2.0));
        assert_eq!(update.weights, Matrix::filled(2, 2, 1.0));
        assert_eq!(update.biases, vec![1.0, 1.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Momentum::new(1.0, 0.5);
        let u1 = opt.step(0, &gradient(1.0));
        let u2 = opt.step(0, &gradient(1.0));
        // v1 = 1, v2 = 0.5*1 + 1 = 1.5
        assert_eq!(u1.weights.get(0, 0), 1.0);
        assert_eq!(u2.weights.get(0, 0), 1.5);
    }

    #[test]
    fn momentum_layers_do_not_interfere() {
        let mut opt = Momentum::new(1.0, 0.9);
        let _ = opt.step(0, &gradient(1.0));
        let u_layer1 = opt.step(1, &gradient(1.0));
        // Layer 1 has no prior velocity, so its first update equals the gradient.
        assert_eq!(u_layer1.weights.get(0, 0), 1.0);
    }

    #[test]
    fn momentum_reset_clears_velocity() {
        let mut opt = Momentum::new(1.0, 0.5);
        let _ = opt.step(0, &gradient(1.0));
        opt.reset();
        let u = opt.step(0, &gradient(1.0));
        assert_eq!(u.weights.get(0, 0), 1.0);
    }

    #[test]
    fn adam_first_step_is_close_to_learning_rate() {
        // With bias correction, the very first Adam update has magnitude ~lr
        // regardless of gradient scale.
        let mut opt = Adam::new(0.01);
        let update = opt.step(0, &gradient(5.0));
        assert!((update.weights.get(0, 0) - 0.01).abs() < 1e-3);
        let mut opt2 = Adam::new(0.01);
        let update2 = opt2.step(0, &gradient(0.001));
        assert!((update2.weights.get(0, 0) - 0.01).abs() < 1e-3);
    }

    #[test]
    fn adam_update_sign_follows_gradient_sign() {
        let mut opt = Adam::new(0.01);
        let grad = LayerGradient {
            weights: Matrix::filled(1, 1, -3.0),
            biases: vec![-3.0],
        };
        let update = opt.step(0, &grad);
        assert!(update.weights.get(0, 0) < 0.0);
        assert!(update.biases[0] < 0.0);
    }

    #[test]
    fn learning_rate_can_be_adjusted() {
        let mut opt: Box<dyn Optimizer> = Box::new(Adam::new(0.01));
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn adam_reset_restores_initial_behaviour() {
        let mut opt = Adam::new(0.01);
        let first = opt.step(0, &gradient(1.0));
        for _ in 0..5 {
            let _ = opt.step(0, &gradient(1.0));
        }
        opt.reset();
        let after_reset = opt.step(0, &gradient(1.0));
        assert!((first.weights.get(0, 0) - after_reset.weights.get(0, 0)).abs() < 1e-6);
    }
}
