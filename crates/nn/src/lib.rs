//! # pmlp-nn — from-scratch MLP training substrate
//!
//! This crate implements everything needed to train the small multilayer
//! perceptrons (MLPs) used as printed-electronics classifiers in the DATE 2023
//! paper *Hardware-Aware Automated Neural Minimization for Printed Multilayer
//! Perceptrons*: a dense matrix type, dense layers with activations,
//! losses, optimizers (SGD / momentum / Adam), a mini-batch trainer and
//! classification metrics.
//!
//! The MLPs in the printed-electronics setting are deliberately tiny (a single
//! hidden layer of a few tens of neurons), so this crate favours clarity and
//! determinism over raw throughput: all tensors are dense row-major `f32`
//! matrices and all randomness flows through caller-provided [`rand::Rng`]
//! instances so that experiments are reproducible.
//!
//! ## Example
//!
//! ```
//! use pmlp_nn::{Mlp, MlpBuilder, Activation, Trainer, TrainConfig, Dataset};
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! # fn main() -> Result<(), pmlp_nn::NnError> {
//! let mut rng = StdRng::seed_from_u64(7);
//! // A tiny two-class problem: points left/right of the y axis.
//! let xs: Vec<Vec<f32>> = (0..200)
//!     .map(|i| vec![if i % 2 == 0 { -1.0 } else { 1.0 } + (i as f32 % 7.0) * 0.01, 0.5])
//!     .collect();
//! let ys: Vec<usize> = (0..200).map(|i| i % 2).collect();
//! let data = Dataset::from_rows(xs, ys, 2)?;
//!
//! let mut mlp = MlpBuilder::new(2)
//!     .hidden(8, Activation::ReLU)
//!     .output(2)
//!     .build(&mut rng)?;
//!
//! let config = TrainConfig { epochs: 20, batch_size: 16, ..TrainConfig::default() };
//! let trainer = Trainer::new(config);
//! trainer.fit(&mut mlp, &data, None, &mut rng)?;
//! let acc = mlp.accuracy(&data);
//! assert!(acc > 0.9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
pub mod dataset;
pub mod error;
pub mod init;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod optimizer;
pub mod trainer;

pub use activation::Activation;
pub use dataset::Dataset;
pub use error::NnError;
pub use init::WeightInit;
pub use layer::{BackpropScratch, DenseLayer};
pub use loss::Loss;
pub use matrix::Matrix;
pub use metrics::{accuracy, confusion_matrix, macro_f1, ClassificationReport};
pub use mlp::{Mlp, MlpBuilder, MlpScratch};
pub use optimizer::{Adam, Momentum, Optimizer, Sgd};
pub use trainer::{TrainConfig, TrainReport, Trainer};
