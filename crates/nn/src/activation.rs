//! Activation functions and their derivatives.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Activation function applied element-wise after a dense layer.
///
/// Printed bespoke MLPs favour activations that map to cheap hardware:
/// [`Activation::ReLU`] is a comparator + mux, [`Activation::HardSigmoid`] and
/// [`Activation::HardTanh`] are clamped linear segments. [`Activation::Sigmoid`]
/// and [`Activation::Tanh`] are included for software baselines, and
/// [`Activation::Identity`] is used on output layers trained with a softmax
/// cross-entropy loss.
///
/// # Example
///
/// ```
/// use pmlp_nn::Activation;
///
/// assert_eq!(Activation::ReLU.apply(-1.5), 0.0);
/// assert_eq!(Activation::ReLU.apply(2.0), 2.0);
/// assert_eq!(Activation::ReLU.derivative(2.0), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    #[default]
    ReLU,
    /// Logistic sigmoid, `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Piecewise-linear sigmoid approximation `clamp(0.2 x + 0.5, 0, 1)` —
    /// hardware friendly (shift and add only).
    HardSigmoid,
    /// Piecewise-linear tanh approximation `clamp(x, -1, 1)`.
    HardTanh,
    /// Identity (no activation); typically used before a softmax loss.
    Identity,
}

impl Activation {
    /// Applies the activation to a single value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::ReLU => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::HardSigmoid => (0.2 * x + 0.5).clamp(0.0, 1.0),
            Activation::HardTanh => x.clamp(-1.0, 1.0),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation with respect to its pre-activation input.
    ///
    /// For the piecewise-linear activations the derivative at the kink points
    /// follows the usual sub-gradient convention used for training (the value
    /// of the right-continuous branch).
    #[inline]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::ReLU => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = Activation::Sigmoid.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::HardSigmoid => {
                if (-2.5..=2.5).contains(&x) {
                    0.2
                } else {
                    0.0
                }
            }
            Activation::HardTanh => {
                if (-1.0..=1.0).contains(&x) {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to every element of a matrix.
    pub fn apply_matrix(self, m: &Matrix) -> Matrix {
        m.map(|x| self.apply(x))
    }

    /// Applies the activation to every element in place (allocation-free
    /// variant used by the batched inference path).
    pub fn apply_matrix_inplace(self, m: &mut Matrix) {
        if self == Activation::Identity {
            return;
        }
        m.map_inplace(|x| self.apply(x));
    }

    /// Element-wise derivative over a matrix of pre-activations.
    pub fn derivative_matrix(self, m: &Matrix) -> Matrix {
        m.map(|x| self.derivative(x))
    }

    /// `true` when the activation is implementable with comparators, muxes and
    /// shifts only (no exponentials), i.e. suitable for bespoke printed
    /// hardware.
    pub fn is_hardware_friendly(self) -> bool {
        matches!(
            self,
            Activation::ReLU
                | Activation::HardSigmoid
                | Activation::HardTanh
                | Activation::Identity
        )
    }

    /// All supported activations, useful for exhaustive sweeps and tests.
    pub fn all() -> [Activation; 6] {
        [
            Activation::ReLU,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::HardSigmoid,
            Activation::HardTanh,
            Activation::Identity,
        ]
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::ReLU => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::HardSigmoid => "hard_sigmoid",
            Activation::HardTanh => "hard_tanh",
            Activation::Identity => "identity",
        };
        f.write_str(name)
    }
}

/// Row-wise softmax with the usual max-subtraction for numerical stability.
///
/// # Example
///
/// ```
/// use pmlp_nn::{Matrix, activation::softmax_rows};
///
/// # fn main() -> Result<(), pmlp_nn::NnError> {
/// let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]])?;
/// let probs = softmax_rows(&logits);
/// let sum: f32 = probs.row(0).iter().sum();
/// assert!((sum - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        if sum > 0.0 {
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative_values() {
        assert_eq!(Activation::ReLU.apply(-3.0), 0.0);
        assert_eq!(Activation::ReLU.apply(0.0), 0.0);
        assert_eq!(Activation::ReLU.apply(4.5), 4.5);
    }

    #[test]
    fn sigmoid_is_bounded_and_symmetric() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(s.apply(10.0) > 0.999);
        assert!(s.apply(-10.0) < 0.001);
        assert!((s.apply(2.0) + s.apply(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_matches_std() {
        assert!((Activation::Tanh.apply(0.7) - 0.7f32.tanh()).abs() < 1e-7);
    }

    #[test]
    fn hard_sigmoid_clamps() {
        let h = Activation::HardSigmoid;
        assert_eq!(h.apply(-10.0), 0.0);
        assert_eq!(h.apply(10.0), 1.0);
        assert!((h.apply(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn hard_tanh_clamps() {
        let h = Activation::HardTanh;
        assert_eq!(h.apply(-3.0), -1.0);
        assert_eq!(h.apply(3.0), 1.0);
        assert_eq!(h.apply(0.25), 0.25);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3_f32;
        for act in Activation::all() {
            // Avoid the kink points of the piecewise-linear activations.
            for &x in &[-2.0f32, -0.7, 0.3, 1.7] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act}: derivative mismatch at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn hardware_friendly_classification() {
        assert!(Activation::ReLU.is_hardware_friendly());
        assert!(Activation::HardSigmoid.is_hardware_friendly());
        assert!(!Activation::Sigmoid.is_hardware_friendly());
        assert!(!Activation::Tanh.is_hardware_friendly());
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let logits = Matrix::from_rows(&[vec![1.0, 3.0, 2.0], vec![-1.0, -1.0, -1.0]]).unwrap();
        let p = softmax_rows(&logits);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert_eq!(p.argmax_rows()[0], 1);
        assert!(p.row(0)[1] > p.row(0)[2]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let logits = Matrix::from_rows(&[vec![1000.0, 1001.0]]).unwrap();
        let p = softmax_rows(&logits);
        assert!(p.row(0).iter().all(|x| x.is_finite()));
        assert!(p.row(0)[1] > p.row(0)[0]);
    }

    #[test]
    fn display_names_are_snake_case() {
        assert_eq!(Activation::HardSigmoid.to_string(), "hard_sigmoid");
        assert_eq!(Activation::ReLU.to_string(), "relu");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn relu_output_is_non_negative(x in -100.0f32..100.0) {
            prop_assert!(Activation::ReLU.apply(x) >= 0.0);
        }

        #[test]
        fn sigmoid_output_in_unit_interval(x in -50.0f32..50.0) {
            let y = Activation::Sigmoid.apply(x);
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn hard_variants_are_bounded(x in -50.0f32..50.0) {
            prop_assert!((0.0..=1.0).contains(&Activation::HardSigmoid.apply(x)));
            prop_assert!((-1.0..=1.0).contains(&Activation::HardTanh.apply(x)));
        }

        #[test]
        fn softmax_rows_are_probability_distributions(
            v in proptest::collection::vec(-20.0f32..20.0, 5)
        ) {
            let m = Matrix::from_rows(&[v]).unwrap();
            let p = softmax_rows(&m);
            let sum: f32 = p.row(0).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(0).iter().all(|&x| x >= 0.0));
        }
    }
}
