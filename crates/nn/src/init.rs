//! Weight-initialization schemes.

use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Weight initialization scheme for dense layers.
///
/// # Example
///
/// ```
/// use pmlp_nn::WeightInit;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let w = WeightInit::XavierUniform.matrix(4, 8, &mut rng);
/// assert_eq!(w.shape(), (4, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum WeightInit {
    /// Glorot/Xavier uniform: `U(-sqrt(6/(fan_in+fan_out)), +sqrt(...))`.
    #[default]
    XavierUniform,
    /// He/Kaiming uniform: `U(-sqrt(6/fan_in), +sqrt(6/fan_in))`, suited to ReLU.
    HeUniform,
    /// Uniform in a fixed `[-0.5, 0.5]` range (legacy bespoke-MLP baseline).
    SmallUniform,
    /// All zeros (useful for biases and for tests).
    Zeros,
}

impl WeightInit {
    /// Samples a single weight for a layer with the given fan-in/fan-out.
    pub fn sample<R: Rng + ?Sized>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> f32 {
        match self {
            WeightInit::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                rng.gen_range(-limit..=limit)
            }
            WeightInit::HeUniform => {
                let limit = (6.0 / fan_in.max(1) as f32).sqrt();
                rng.gen_range(-limit..=limit)
            }
            WeightInit::SmallUniform => rng.gen_range(-0.5..=0.5),
            WeightInit::Zeros => 0.0,
        }
    }

    /// Builds a `fan_in x fan_out` weight matrix.
    pub fn matrix<R: Rng + ?Sized>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
        let mut m = Matrix::zeros(fan_in, fan_out);
        for r in 0..fan_in {
            for c in 0..fan_out {
                m.set(r, c, self.sample(fan_in, fan_out, rng));
            }
        }
        m
    }

    /// Upper bound of the absolute value of a sampled weight for the given
    /// fan-in/fan-out, used by tests and by the fixed-point range analysis.
    pub fn bound(self, fan_in: usize, fan_out: usize) -> f32 {
        match self {
            WeightInit::XavierUniform => (6.0 / (fan_in + fan_out).max(1) as f32).sqrt(),
            WeightInit::HeUniform => (6.0 / fan_in.max(1) as f32).sqrt(),
            WeightInit::SmallUniform => 0.5,
            WeightInit::Zeros => 0.0,
        }
    }
}

impl fmt::Display for WeightInit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WeightInit::XavierUniform => "xavier_uniform",
            WeightInit::HeUniform => "he_uniform",
            WeightInit::SmallUniform => "small_uniform",
            WeightInit::Zeros => "zeros",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for init in [
            WeightInit::XavierUniform,
            WeightInit::HeUniform,
            WeightInit::SmallUniform,
        ] {
            let bound = init.bound(10, 20);
            for _ in 0..500 {
                let w = init.sample(10, 20, &mut rng);
                assert!(w.abs() <= bound + 1e-6, "{init}: {w} exceeds bound {bound}");
            }
        }
    }

    #[test]
    fn zeros_init_is_all_zeros() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = WeightInit::Zeros.matrix(3, 5, &mut rng);
        assert_eq!(m.count_zeros(), 15);
    }

    #[test]
    fn matrix_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = WeightInit::HeUniform.matrix(7, 3, &mut rng);
        assert_eq!(m.shape(), (7, 3));
    }

    #[test]
    fn same_seed_gives_same_matrix() {
        let a = WeightInit::XavierUniform.matrix(4, 4, &mut StdRng::seed_from_u64(9));
        let b = WeightInit::XavierUniform.matrix(4, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_matrices() {
        let a = WeightInit::XavierUniform.matrix(4, 4, &mut StdRng::seed_from_u64(1));
        let b = WeightInit::XavierUniform.matrix(4, 4, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn he_bound_larger_than_xavier_for_same_fans() {
        assert!(WeightInit::HeUniform.bound(16, 16) > WeightInit::XavierUniform.bound(16, 16));
    }
}
