//! End-to-end tests of the evaluation-cache server against the real
//! `pmlp-core` HTTP client: records and documents round-trip over loopback,
//! the tiered composition fills its local cache from the server, and bad
//! input is rejected instead of stored.

use pmlp_core::engine::EvalKey;
use pmlp_core::objective::{DesignPoint, SynthesisTier};
use pmlp_core::store::{
    EvalRecord, EvalStore, LocalJsonlBackend, MemoryBackend, RemoteBackend, StoreBackend,
    TieredStore,
};
use pmlp_minimize::MinimizationConfig;
use pmlp_serve::{spawn, ServeConfig};
use std::path::PathBuf;

fn record(bits: u8, accuracy: f64) -> EvalRecord {
    EvalRecord {
        key: EvalKey {
            weight_bits: bits,
            sparsity_millis: u32::MAX,
            clusters: 0,
            input_bits: 4,
            fine_tune_epochs: 2,
            salt: 0xFEED_FACE_CAFE_BEEF,
        },
        tier: SynthesisTier::FastPath,
        point: DesignPoint {
            config: MinimizationConfig::default().with_weight_bits(bits),
            accuracy,
            area_mm2: 42.5,
            power_uw: 425.0,
            normalized_accuracy: accuracy / 0.9,
            normalized_area: 0.425,
            sparsity: 0.0,
            gate_count: 300,
        },
        artifacts: None,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pmlp-serve-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn records_round_trip_through_the_server() {
    let handle = spawn(&ServeConfig::default()).unwrap();
    let client = RemoteBackend::new(&handle.url()).unwrap();
    assert!(client.ping());

    // Empty scan first: a valid (empty) log with a matching header.
    let outcome = client.scan("Seeds", 0xAB).unwrap();
    assert!(outcome.records.is_empty());

    let a = record(3, 0.8);
    let b = record(4, 0.9);
    client.append("Seeds", 0xAB, &a).unwrap();
    client.append("Seeds", 0xAB, &b).unwrap();

    let outcome = client.scan("Seeds", 0xAB).unwrap();
    assert_eq!(outcome.records, vec![a.clone(), b.clone()]);
    assert_eq!(outcome.dropped, 0);

    // Fingerprints isolate on the server exactly like on disk.
    assert!(client.scan("Seeds", 0xCD).unwrap().records.is_empty());
    // get() resolves through the scan path.
    assert_eq!(client.get("Seeds", 0xAB, &a.key).unwrap(), Some(a));

    let stats = handle.stats();
    assert_eq!(stats.records_appended, 2);
    assert!(stats.scans >= 3);
    handle.stop();
}

#[test]
fn documents_round_trip_and_missing_ones_are_404_not_errors() {
    let handle = spawn(&ServeConfig::default()).unwrap();
    let client = RemoteBackend::new(&handle.url()).unwrap();

    assert_eq!(client.get_doc("checkpoint.json").unwrap(), None);
    client.put_doc("checkpoint.json", "{\"gen\":3}").unwrap();
    assert_eq!(
        client.get_doc("checkpoint.json").unwrap().as_deref(),
        Some("{\"gen\":3}")
    );
    // Overwrite.
    client.put_doc("checkpoint.json", "{\"gen\":4}").unwrap();
    assert_eq!(
        client.get_doc("checkpoint.json").unwrap().as_deref(),
        Some("{\"gen\":4}")
    );
    client.remove_doc("checkpoint.json").unwrap();
    assert_eq!(client.get_doc("checkpoint.json").unwrap(), None);
    client.remove_doc("checkpoint.json").unwrap(); // idempotent
    handle.stop();
}

#[test]
fn server_rejects_malformed_records_and_unsafe_paths() {
    let handle = spawn(&ServeConfig::default()).unwrap();
    let client = RemoteBackend::new(&handle.url()).unwrap();

    // A hand-rolled bad append: the server must reject the whole batch.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let body = "this is not a record line";
    write!(
        stream,
        "POST /v1/records/seeds/00000000000000ab HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "got: {response}");

    // Nothing was stored.
    assert!(client.scan("seeds", 0xAB).unwrap().records.is_empty());

    // Unsafe names never reach the backend.
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    write!(
        stream,
        "GET /v1/docs/..%2Fescape HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 404"), "got: {response}");

    assert!(handle.stats().bad_requests >= 1);
    handle.stop();
}

#[test]
fn tiered_store_fills_its_local_cache_from_the_server() {
    let handle = spawn(&ServeConfig::default()).unwrap();

    // Worker A computes two "evaluations" and replicates them.
    let worker_a = TieredStore::new(
        Box::new(MemoryBackend::new()),
        Box::new(RemoteBackend::new(&handle.url()).unwrap()),
    );
    let a = record(3, 0.8);
    let b = record(4, 0.9);
    worker_a.append("Seeds", 0x11, &a).unwrap();
    worker_a.append("Seeds", 0x11, &b).unwrap();

    // Worker B, fresh local tier, same server: the scan streams both records
    // in and caches them locally.
    let local_b = MemoryBackend::new();
    let worker_b = TieredStore::new(
        Box::new(local_b),
        Box::new(RemoteBackend::new(&handle.url()).unwrap()),
    );
    let outcome = worker_b.scan("Seeds", 0x11).unwrap();
    assert_eq!(outcome.records.len(), 2);
    assert_eq!(worker_b.stats().remote_fills, 2);

    // Kill the server: worker B still answers from its filled local cache.
    handle.stop();
    let outcome = worker_b.scan("Seeds", 0x11).unwrap();
    assert_eq!(
        outcome.records.len(),
        2,
        "local cache must survive the server"
    );
    assert!(!worker_b.remote_healthy());
}

#[test]
fn eval_store_checkpoint_documents_replicate_to_the_server() {
    let handle = spawn(&ServeConfig::default()).unwrap();
    let tiered = TieredStore::new(
        Box::new(MemoryBackend::new()),
        Box::new(RemoteBackend::new(&handle.url()).unwrap()),
    );
    let store = EvalStore::with_backend(Box::new(tiered), "Seeds", 0x22).unwrap();
    store
        .put_doc("done_seeds_0000.json", "{\"done\":true}")
        .unwrap();

    // A different client sees the document on the server.
    let other = RemoteBackend::new(&handle.url()).unwrap();
    assert_eq!(
        other.get_doc("done_seeds_0000.json").unwrap().as_deref(),
        Some("{\"done\":true}")
    );
    handle.stop();
}

#[test]
fn a_store_directory_backs_the_server_durably() {
    let dir = temp_dir("durable");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: Some(dir.clone()),
    };
    let a = record(5, 0.7);
    {
        let handle = spawn(&config).unwrap();
        let client = RemoteBackend::new(&handle.url()).unwrap();
        client.append("Seeds", 0x33, &a).unwrap();
        handle.stop();
    }
    // A new server over the same directory still has the record...
    {
        let handle = spawn(&config).unwrap();
        let client = RemoteBackend::new(&handle.url()).unwrap();
        assert_eq!(client.scan("Seeds", 0x33).unwrap().records, vec![a.clone()]);
        handle.stop();
    }
    // ...because it lives in the standard local JSONL format, readable by a
    // plain single-machine backend too.
    let local = LocalJsonlBackend::open(&dir).unwrap();
    assert_eq!(local.scan("Seeds", 0x33).unwrap().records, vec![a]);
    std::fs::remove_dir_all(&dir).ok();
}
