//! End-to-end tests of the evaluation-cache server against the real
//! `pmlp-core` HTTP client: records and documents round-trip over loopback,
//! the tiered composition fills its local cache from the server, and bad
//! input is rejected instead of stored.

use pmlp_core::engine::EvalKey;
use pmlp_core::objective::{AccuracyTier, DesignPoint, SynthesisTier};
use pmlp_core::store::{
    EvalRecord, EvalStore, LocalJsonlBackend, MemoryBackend, RemoteBackend, StoreBackend,
    TieredStore,
};
use pmlp_minimize::MinimizationConfig;
use pmlp_serve::{spawn, ServeConfig};
use std::path::PathBuf;

fn record(bits: u8, accuracy: f64) -> EvalRecord {
    EvalRecord {
        key: EvalKey {
            weight_bits: bits,
            sparsity_millis: u32::MAX,
            clusters: 0,
            input_bits: 4,
            fine_tune_epochs: 2,
            salt: 0xFEED_FACE_CAFE_BEEF,
            accuracy_tier: AccuracyTier::Integer,
        },
        tier: SynthesisTier::FastPath,
        point: DesignPoint {
            config: MinimizationConfig::default().with_weight_bits(bits),
            accuracy,
            area_mm2: 42.5,
            power_uw: 425.0,
            delay_us: 2.0,
            normalized_accuracy: accuracy / 0.9,
            normalized_area: 0.425,
            sparsity: 0.0,
            gate_count: 300,
        },
        artifacts: None,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pmlp-serve-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn records_round_trip_through_the_server() {
    let handle = spawn(&ServeConfig::default()).unwrap();
    let client = RemoteBackend::new(&handle.url()).unwrap();
    assert!(client.ping());

    // Empty scan first: a valid (empty) log with a matching header.
    let outcome = client.scan("Seeds", 0xAB).unwrap();
    assert!(outcome.records.is_empty());

    let a = record(3, 0.8);
    let b = record(4, 0.9);
    client.append("Seeds", 0xAB, &a).unwrap();
    client.append("Seeds", 0xAB, &b).unwrap();

    let outcome = client.scan("Seeds", 0xAB).unwrap();
    assert_eq!(outcome.records, vec![a.clone(), b.clone()]);
    assert_eq!(outcome.dropped, 0);

    // Fingerprints isolate on the server exactly like on disk.
    assert!(client.scan("Seeds", 0xCD).unwrap().records.is_empty());
    // get() resolves through the scan path.
    assert_eq!(client.get("Seeds", 0xAB, &a.key).unwrap(), Some(a));

    let stats = handle.stats();
    assert_eq!(stats.records_appended, 2);
    assert!(stats.scans >= 3);
    handle.stop();
}

#[test]
fn documents_round_trip_and_missing_ones_are_404_not_errors() {
    let handle = spawn(&ServeConfig::default()).unwrap();
    let client = RemoteBackend::new(&handle.url()).unwrap();

    assert_eq!(client.get_doc("checkpoint.json").unwrap(), None);
    client.put_doc("checkpoint.json", "{\"gen\":3}").unwrap();
    assert_eq!(
        client.get_doc("checkpoint.json").unwrap().as_deref(),
        Some("{\"gen\":3}")
    );
    // Overwrite.
    client.put_doc("checkpoint.json", "{\"gen\":4}").unwrap();
    assert_eq!(
        client.get_doc("checkpoint.json").unwrap().as_deref(),
        Some("{\"gen\":4}")
    );
    client.remove_doc("checkpoint.json").unwrap();
    assert_eq!(client.get_doc("checkpoint.json").unwrap(), None);
    client.remove_doc("checkpoint.json").unwrap(); // idempotent
    handle.stop();
}

#[test]
fn server_rejects_malformed_records_and_unsafe_paths() {
    let handle = spawn(&ServeConfig::default()).unwrap();
    let client = RemoteBackend::new(&handle.url()).unwrap();

    // A hand-rolled bad append: the server must reject the whole batch.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let body = "this is not a record line";
    write!(
        stream,
        "POST /v1/records/seeds/00000000000000ab HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "got: {response}");

    // Nothing was stored.
    assert!(client.scan("seeds", 0xAB).unwrap().records.is_empty());

    // Unsafe names never reach the backend.
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    write!(
        stream,
        "GET /v1/docs/..%2Fescape HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 404"), "got: {response}");

    assert!(handle.stats().bad_requests >= 1);
    handle.stop();
}

#[test]
fn tiered_store_fills_its_local_cache_from_the_server() {
    let handle = spawn(&ServeConfig::default()).unwrap();

    // Worker A computes two "evaluations" and replicates them.
    let worker_a = TieredStore::new(
        Box::new(MemoryBackend::new()),
        Box::new(RemoteBackend::new(&handle.url()).unwrap()),
    );
    let a = record(3, 0.8);
    let b = record(4, 0.9);
    worker_a.append("Seeds", 0x11, &a).unwrap();
    worker_a.append("Seeds", 0x11, &b).unwrap();

    // Worker B, fresh local tier, same server: the scan streams both records
    // in and caches them locally.
    let local_b = MemoryBackend::new();
    let worker_b = TieredStore::new(
        Box::new(local_b),
        Box::new(RemoteBackend::new(&handle.url()).unwrap()),
    );
    let outcome = worker_b.scan("Seeds", 0x11).unwrap();
    assert_eq!(outcome.records.len(), 2);
    assert_eq!(worker_b.stats().remote_fills, 2);

    // Kill the server: worker B still answers from its filled local cache.
    handle.stop();
    let outcome = worker_b.scan("Seeds", 0x11).unwrap();
    assert_eq!(
        outcome.records.len(),
        2,
        "local cache must survive the server"
    );
    assert!(!worker_b.remote_healthy());
}

#[test]
fn eval_store_checkpoint_documents_replicate_to_the_server() {
    let handle = spawn(&ServeConfig::default()).unwrap();
    let tiered = TieredStore::new(
        Box::new(MemoryBackend::new()),
        Box::new(RemoteBackend::new(&handle.url()).unwrap()),
    );
    let store = EvalStore::with_backend(Box::new(tiered), "Seeds", 0x22).unwrap();
    store
        .put_doc("done_seeds_0000.json", "{\"done\":true}")
        .unwrap();

    // A different client sees the document on the server.
    let other = RemoteBackend::new(&handle.url()).unwrap();
    assert_eq!(
        other.get_doc("done_seeds_0000.json").unwrap().as_deref(),
        Some("{\"done\":true}")
    );
    handle.stop();
}

#[test]
fn a_store_directory_backs_the_server_durably() {
    let dir = temp_dir("durable");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let a = record(5, 0.7);
    {
        let handle = spawn(&config).unwrap();
        let client = RemoteBackend::new(&handle.url()).unwrap();
        client.append("Seeds", 0x33, &a).unwrap();
        handle.stop();
    }
    // A new server over the same directory still has the record...
    {
        let handle = spawn(&config).unwrap();
        let client = RemoteBackend::new(&handle.url()).unwrap();
        assert_eq!(client.scan("Seeds", 0x33).unwrap().records, vec![a.clone()]);
        handle.stop();
    }
    // ...because it lives in the standard local JSONL format, readable by a
    // plain single-machine backend too.
    let local = LocalJsonlBackend::open(&dir).unwrap();
    assert_eq!(local.scan("Seeds", 0x33).unwrap().records, vec![a]);
    std::fs::remove_dir_all(&dir).ok();
}

/// A record with a distinguishable key, for concurrency tests that must
/// prove nothing was lost or duplicated.
fn keyed_record(thread: u8, i: u32) -> EvalRecord {
    let mut r = record(thread, 0.5 + f64::from(i) / 1000.0);
    r.key.sparsity_millis = i;
    r
}

#[test]
fn concurrent_clients_hammering_one_server_lose_nothing() {
    let handle = spawn(&ServeConfig::default()).unwrap();
    const THREADS: u8 = 8;
    const PER_THREAD: u32 = 25;

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let url = handle.url();
            scope.spawn(move || {
                // One keep-alive client per thread, mixing single appends,
                // batches and interleaved scans.
                let client = RemoteBackend::new(&url).unwrap();
                let mut i = 0;
                while i < PER_THREAD {
                    if i % 5 == 0 && i + 2 <= PER_THREAD {
                        let batch = [keyed_record(t, i), keyed_record(t, i + 1)];
                        client.append_batch("Seeds", 0x77, &batch).unwrap();
                        i += 2;
                    } else {
                        client.append("Seeds", 0x77, &keyed_record(t, i)).unwrap();
                        i += 1;
                    }
                    if i % 7 == 0 {
                        client.scan("Seeds", 0x77).unwrap();
                    }
                }
            });
        }
    });

    let client = RemoteBackend::new(&handle.url()).unwrap();
    let outcome = client.scan("Seeds", 0x77).unwrap();
    let expected = usize::from(THREADS) * PER_THREAD as usize;
    assert_eq!(outcome.records.len(), expected, "no record may be lost");
    let unique: std::collections::HashSet<_> = outcome.records.iter().map(|r| r.key).collect();
    assert_eq!(unique.len(), expected, "no record may be duplicated");

    let stats = handle.stats();
    assert_eq!(stats.records_appended, expected as u64);
    assert!(
        stats.requests_reused > 0,
        "keep-alive connections must be reused: {stats:?}"
    );
    assert!(
        stats.connections_accepted < stats.requests,
        "connection pooling must amortize connections over requests: {stats:?}"
    );
    handle.stop();
}

#[test]
fn a_slowloris_connection_times_out_without_wedging_the_worker() {
    // One worker: if the stalled connection wedged it, the healthy request
    // below could never be served.
    let config = ServeConfig {
        workers: 1,
        request_timeout: std::time::Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let handle = spawn(&config).unwrap();

    use std::io::{Read, Write};
    let mut slow = std::net::TcpStream::connect(handle.addr()).unwrap();
    // First byte sent, request never finished: the deadline must fire.
    slow.write_all(b"POST /v1/records/seeds/00").unwrap();

    let start = std::time::Instant::now();
    let mut response = String::new();
    slow.read_to_string(&mut response).ok();
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "stalled request must get 408, got: {response:?}"
    );
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "deadline must fire promptly"
    );

    // The (single) worker is free again: a healthy client gets served.
    let client = RemoteBackend::new(&handle.url()).unwrap();
    client.append("Seeds", 0x88, &record(3, 0.8)).unwrap();
    assert_eq!(client.scan("Seeds", 0x88).unwrap().records.len(), 1);
    assert!(handle.stats().bad_requests >= 1);
    handle.stop();
}

#[test]
fn bearer_auth_rejects_bad_tokens_and_tiered_stores_degrade_cleanly() {
    let config = ServeConfig {
        token: Some("sekrit".into()),
        ..ServeConfig::default()
    };
    let handle = spawn(&config).unwrap();

    // The liveness probe stays open (load balancers don't carry tokens)...
    let anonymous = RemoteBackend::new(&handle.url()).unwrap();
    assert!(anonymous.ping());
    // ...but everything else is a 401 without the right token.
    assert!(anonymous.append("Seeds", 0x99, &record(3, 0.8)).is_err());
    let wrong = RemoteBackend::new(&handle.url())
        .unwrap()
        .with_token("nope");
    assert!(wrong.scan("Seeds", 0x99).is_err());

    // The token rides in the URL userinfo, exactly like --remote-store.
    let authed = RemoteBackend::new(&format!("http://sekrit@{}", handle.addr())).unwrap();
    authed.append("Seeds", 0x99, &record(3, 0.8)).unwrap();
    assert_eq!(authed.scan("Seeds", 0x99).unwrap().records.len(), 1);

    // A misconfigured worker degrades to its local tier instead of failing.
    let tiered = TieredStore::new(
        Box::new(MemoryBackend::new()),
        Box::new(
            RemoteBackend::new(&handle.url())
                .unwrap()
                .with_token("nope"),
        ),
    );
    tiered.append("Seeds", 0x99, &record(4, 0.9)).unwrap();
    assert_eq!(tiered.scan("Seeds", 0x99).unwrap().records.len(), 1);
    assert!(!tiered.remote_healthy());

    let stats = handle.stats();
    assert!(stats.auth_failures >= 3, "got: {stats:?}");
    handle.stop();
}

#[test]
fn online_gc_compacts_and_drops_dead_fingerprints() {
    let dir = temp_dir("online-gc");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let handle = spawn(&config).unwrap();
    let client = RemoteBackend::new(&handle.url()).unwrap();

    // One log with a duplicated key, one log that will become dead.
    let a = record(3, 0.8);
    let mut a2 = a.clone();
    a2.point.accuracy = 0.81;
    client.append("Seeds", 0xAA, &a).unwrap();
    client.append("Seeds", 0xAA, &a2).unwrap();
    client.append("Wine", 0xBB, &record(4, 0.9)).unwrap();

    // Pass 1, no live set: pure compaction (threshold 0 forces the rewrite).
    let report = client.gc("{\"compact_threshold_bytes\": 0}").unwrap();
    assert!(report.contains("\"duplicates_merged\": 1"), "got: {report}");
    // The index reloaded from the rewritten file: last write won.
    let outcome = client.scan("Seeds", 0xAA).unwrap();
    assert_eq!(outcome.records, vec![a2]);
    assert_eq!(client.scan("Wine", 0xBB).unwrap().records.len(), 1);

    // Pass 2: only 0xAA is live; the wine log is dropped for good.
    let report = client
        .gc("{\"live\": [\"00000000000000aa\"], \"compact_threshold_bytes\": 0}")
        .unwrap();
    assert!(report.contains("\"files_dropped\": 1"), "got: {report}");
    assert!(client.scan("Wine", 0xBB).unwrap().records.is_empty());
    assert_eq!(client.scan("Seeds", 0xAA).unwrap().records.len(), 1);

    assert_eq!(handle.stats().gc_runs, 2);
    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_draining_server_stays_live_but_stops_being_ready() {
    use std::io::{Read, Write};
    let healthz = |addr: std::net::SocketAddr| {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /v1/healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    };

    let handle = spawn(&ServeConfig::default()).unwrap();
    let response = healthz(handle.addr());
    assert!(response.starts_with("HTTP/1.1 200"), "got: {response}");
    assert!(response.contains("\"ok\""), "got: {response}");

    // Draining: still live (answers), no longer ready (503) — and data
    // requests are answered to completion rather than dropped.
    handle.drain();
    let response = healthz(handle.addr());
    assert!(response.starts_with("HTTP/1.1 503"), "got: {response}");
    assert!(response.contains("\"draining\""), "got: {response}");
    let client = RemoteBackend::new(&handle.url()).unwrap();
    client.append("Seeds", 0x51, &record(3, 0.8)).unwrap();
    assert_eq!(client.scan("Seeds", 0x51).unwrap().records.len(), 1);

    handle.stop();
}

#[test]
fn graceful_stop_flushes_a_disk_backed_store() {
    let dir = temp_dir("graceful-flush");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let handle = spawn(&config).unwrap();
    let client = RemoteBackend::new(&handle.url()).unwrap();
    let a = record(3, 0.8);
    let b = record(4, 0.9);
    client.append("Seeds", 0x61, &a).unwrap();
    client.append("Seeds", 0x61, &b).unwrap();
    handle.stop();

    // Everything the server accepted is on disk after a graceful stop.
    let reopened = LocalJsonlBackend::open(&dir).unwrap();
    assert_eq!(reopened.scan("Seeds", 0x61).unwrap().records, vec![a, b]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_restarted_server_is_rejoined_and_journaled_appends_replay() {
    use pmlp_core::store::{BreakerConfig, RetryPolicy};
    let handle = spawn(&ServeConfig::default()).unwrap();
    let addr = handle.addr();
    // Zero cooldown so the half-open probe happens immediately in the test;
    // production uses the 1 s default.
    let tiered = TieredStore::with_breaker(
        Box::new(MemoryBackend::new()),
        Box::new(
            RemoteBackend::new(&format!("http://{addr}"))
                .unwrap()
                .with_retry_policy(RetryPolicy::none()),
        ),
        BreakerConfig {
            failure_threshold: 1,
            cooldown: std::time::Duration::ZERO,
        },
    );
    tiered.append("Seeds", 0x71, &record(3, 0.8)).unwrap();

    // Server dies mid-run. Appends keep succeeding against the local tier
    // and are journaled — not silently lost.
    handle.stop();
    tiered.append("Seeds", 0x71, &record(4, 0.9)).unwrap();
    tiered.append("Seeds", 0x71, &record(5, 0.95)).unwrap();
    assert!(!tiered.remote_healthy());
    assert_eq!(tiered.journal_len(), 2);

    // The operator restarts the server on the same address (fresh state —
    // the in-memory store died with the process).
    let restarted = spawn(&ServeConfig {
        addr: addr.to_string(),
        ..ServeConfig::default()
    })
    .unwrap();

    // The next write probes the half-open breaker, rejoins, and replays the
    // journal; nothing appended during the outage is missing on the server.
    tiered.append("Seeds", 0x71, &record(6, 0.97)).unwrap();
    assert!(tiered.remote_healthy());
    assert_eq!(tiered.journal_len(), 0);
    let on_server = RemoteBackend::new(&restarted.url())
        .unwrap()
        .scan("Seeds", 0x71)
        .unwrap();
    let mut bits: Vec<u8> = on_server
        .records
        .iter()
        .map(|r| r.key.weight_bits)
        .collect();
    bits.sort_unstable();
    assert_eq!(bits, vec![4, 5, 6], "outage-window appends must replay");

    let resilience = tiered.resilience().unwrap();
    assert_eq!(resilience.journaled_records, 2);
    assert_eq!(resilience.replayed_records, 2);
    assert_eq!(resilience.breaker_recoveries, 1);
    assert!(resilience.breaker_opens >= 1);
    restarted.stop();
}
