//! Minimal HTTP/1.1 request/response plumbing for the evaluation-cache
//! server: exactly the subset the `pmlp-core` [`RemoteBackend`] client and
//! `curl`-style smoke tests need — request line, the headers that matter
//! (`Content-Length`, `Connection`, `Authorization`), persistent keep-alive
//! responses, and deadline-armed reads so a half-written request (slowloris)
//! can stall a worker for at most the request timeout.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body. Checkpoint documents carry every scored
/// point of a search, so this is generous rather than tight.
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub(crate) struct Request {
    /// `GET`, `POST`, `PUT`, `DELETE`, ...
    pub method: String,
    /// The request target, e.g. `/v1/records/seeds/00000000000000aa`.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// `true` when the client asked for `Connection: close`.
    pub close: bool,
    /// The token of an `Authorization: Bearer <token>` header, if present.
    pub bearer: Option<String>,
}

/// Why [`read_request`] failed.
#[derive(Debug)]
pub(crate) enum ReadError {
    /// The deadline fired mid-request — a slow or stalled client. Answered
    /// with `408 Request Timeout` (best effort) and a close.
    TimedOut,
    /// The request was malformed or oversized. Answered with `400`.
    Malformed(String),
    /// The peer vanished mid-request; nothing to answer.
    Disconnected,
}

fn timed_out(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from `stream` on a persistent connection.
///
/// Returns `Ok(None)` when the peer closed (or went idle past
/// `idle_timeout`) **between** requests — the normal end of a keep-alive
/// connection. Once the first byte of a request has arrived, the whole
/// request must land within `request_timeout` (checked via per-read
/// deadlines), or the read fails with [`ReadError::TimedOut`] — the
/// slowloris guard: a stalled sender costs a worker at most that long.
///
/// Every byte read is added to `bytes_in`.
pub(crate) fn read_request(
    stream: &mut TcpStream,
    idle_timeout: Duration,
    request_timeout: Duration,
    bytes_in: &mut u64,
) -> Result<Option<Request>, ReadError> {
    let bad = |msg: &str| ReadError::Malformed(msg.to_string());

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];

    // Between requests the connection may sit idle for `idle_timeout`.
    stream.set_read_timeout(Some(idle_timeout)).ok();
    match stream.read(&mut chunk) {
        Ok(0) => return Ok(None),
        Ok(n) => {
            *bytes_in += n as u64;
            buf.extend_from_slice(&chunk[..n]);
        }
        Err(e) if timed_out(e.kind()) => return Ok(None),
        Err(_) => return Err(ReadError::Disconnected),
    }

    // First byte seen: the rest of the request races `request_timeout`.
    let deadline = Instant::now() + request_timeout;
    let mut read_more = |buf: &mut Vec<u8>, bytes_in: &mut u64| -> Result<(), ReadError> {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
            .ok_or(ReadError::TimedOut)?;
        stream.set_read_timeout(Some(remaining)).ok();
        match stream.read(&mut chunk) {
            Ok(0) => Err(ReadError::Disconnected),
            Ok(n) => {
                *bytes_in += n as u64;
                buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) if timed_out(e.kind()) => Err(ReadError::TimedOut),
            Err(_) => Err(ReadError::Disconnected),
        }
    };

    // Accumulate until the blank line that ends the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        read_more(&mut buf, bytes_in)?;
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();

    let mut content_length = 0usize;
    let mut close = false;
    let mut bearer = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case("authorization") {
                bearer = value
                    .strip_prefix("Bearer ")
                    .or_else(|| value.strip_prefix("bearer "))
                    .map(|t| t.trim().to_string());
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("request body too large"));
    }

    // The body: whatever followed the head in the buffer, plus the rest.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        read_more(&mut body, bytes_in)?;
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF8 body"))?;

    Ok(Some(Request {
        method,
        path,
        body,
        close,
        bearer,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response, returning how many bytes went out. `keep_alive`
/// decides the `Connection` header — the client mirrors it.
pub(crate) fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<u64> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok((head.len() + body.len()) as u64)
}
