//! Minimal HTTP/1.1 request/response plumbing for the evaluation-cache
//! server: exactly the subset the `pmlp-core` [`RemoteBackend`] client and
//! `curl`-style smoke tests need — request line, headers, `Content-Length`
//! bodies, `Connection: close` responses.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body. Checkpoint documents carry every scored
/// point of a search, so this is generous rather than tight.
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub(crate) struct Request {
    /// `GET`, `POST`, `PUT`, `DELETE`, ...
    pub method: String,
    /// The request target, e.g. `/v1/records/seeds/00000000000000aa`.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Reads one request from `stream`. Returns `Ok(None)` when the peer closed
/// the connection before sending anything, and `Err` for malformed or
/// oversized requests (the caller answers 400 and closes).
pub(crate) fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());

    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(bad("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("request body too large"));
    }

    // The body: whatever followed the head in the buffer, plus the rest.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF8 body"))?;

    Ok(Some(Request { method, path, body }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one `Connection: close` response.
pub(crate) fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
