//! # pmlp-serve — the networked evaluation-cache tier
//!
//! A dependency-free HTTP/1.1 key-value server over
//! `std::net::TcpListener` that exposes a [`StoreBackend`] to a fleet of
//! workers: candidate evaluations (and search checkpoints / campaign
//! completion markers) computed by one machine become cache hits on every
//! other machine pointed at the same server via `--remote-store URL`.
//!
//! The wire format **is** the store's sealed-envelope JSONL (versioned by
//! [`pmlp_core::store::STORE_VERSION`]): a record scan response is
//! byte-compatible with a local record log, so the `pmlp-core`
//! [`RemoteBackend`](pmlp_core::store::RemoteBackend) client parses it with
//! the same corruption-tolerant code path as a file. Endpoints:
//!
//! | Method + path | Meaning |
//! |---------------|---------|
//! | `GET /v1/healthz` | liveness probe (always unauthenticated) |
//! | `GET /v1/stats` | request/record/connection counters (JSON) |
//! | `GET /v1/records/{name}/{fp}` | scan: header line + one record per line |
//! | `POST /v1/records/{name}/{fp}` | append the record line(s) in the body |
//! | `GET /v1/docs/{name}` | read a document (404 when absent) |
//! | `GET /v1/docs?prefix={p}` | list document names starting with `{p}` (JSON array) |
//! | `PUT /v1/docs/{name}` | write a document |
//! | `DELETE /v1/docs/{name}` | delete a document |
//! | `POST /v1/gc` | run a garbage-collection / compaction pass online |
//!
//! ## Architecture
//!
//! A **bounded worker pool** (default: one worker per core, clamped to
//! 4..=32) serves **persistent HTTP/1.1 keep-alive connections**: the accept
//! loop only hands sockets to a channel, and each worker runs a
//! per-connection request loop until the peer closes, asks for
//! `Connection: close`, goes idle past [`ServeConfig::idle_timeout`], or
//! stalls a single request past [`ServeConfig::request_timeout`] (the
//! slowloris guard — a half-written request costs a worker at most that
//! long, then it answers `408` and moves on).
//!
//! State lives in an in-memory backend by default, or durably in a local
//! JSONL store directory (`ServeConfig::store_dir`) — the same on-disk
//! format a single-machine run writes, so an existing `--store` directory
//! can be promoted to a shared server without conversion. A disk-backed
//! server fronts its directory with an in-memory
//! [`IndexedBackend`]: every record log is replayed **once** (preloaded at
//! startup) and kept current by the appends flowing through it, so scans and
//! point-gets stop re-reading files.
//!
//! Optional bearer-token auth (`ServeConfig::token` / `--token`): every
//! endpoint except `/v1/healthz` then requires
//! `Authorization: Bearer <token>` and answers `401` otherwise. Clients pass
//! the token inline in the store URL: `--remote-store http://TOKEN@host:port`.
//!
//! # Example
//!
//! ```no_run
//! use pmlp_serve::{ServeConfig, spawn};
//!
//! # fn main() -> std::io::Result<()> {
//! let handle = spawn(&ServeConfig::default())?; // 127.0.0.1, ephemeral port
//! println!("serving on {}", handle.url());
//! // ... point workers at handle.url() via --remote-store ...
//! handle.stop();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
mod http;

use http::{read_request, respond, ReadError, Request};
use pmlp_core::store::{
    gc_store_dir, header_line, list_record_logs, parse_record_line, record_line, safe_component,
    DurabilityPolicy, GcPolicy, GcReport, IndexedBackend, LocalJsonlBackend, MemoryBackend,
    StoreBackend,
};
use serde::json::Value;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How a server is stood up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Local JSONL directory to persist records and documents into; `None`
    /// keeps everything in memory for the server's lifetime.
    pub store_dir: Option<PathBuf>,
    /// Bearer token every endpoint except `/v1/healthz` requires; `None`
    /// serves unauthenticated (loopback / trusted-network deployments).
    pub token: Option<String>,
    /// Worker threads serving connections; `0` picks a per-core default
    /// (clamped to 4..=32).
    pub workers: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// How long a single request may take to arrive once its first byte has
    /// been read — the slowloris guard.
    pub request_timeout: Duration,
    /// How long a graceful shutdown waits for in-flight requests to finish
    /// answering before giving up on them.
    pub drain_timeout: Duration,
    /// Durability policy of a disk-backed store (`--durability`); ignored by
    /// the in-memory default. Regardless of policy, a graceful shutdown
    /// fsyncs the record logs before returning.
    pub durability: DurabilityPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            store_dir: None,
            token: None,
            workers: 0,
            idle_timeout: Duration::from_secs(60),
            request_timeout: Duration::from_secs(20),
            drain_timeout: Duration::from_secs(5),
            durability: DurabilityPolicy::default(),
        }
    }
}

fn default_workers() -> usize {
    thread::available_parallelism().map_or(8, |n| n.get().clamp(4, 32))
}

/// Monotonic request/record/connection counters, rendered by `GET /v1/stats`.
#[derive(Debug, Default)]
struct ServeStats {
    requests: AtomicU64,
    scans: AtomicU64,
    records_served: AtomicU64,
    records_appended: AtomicU64,
    doc_gets: AtomicU64,
    doc_puts: AtomicU64,
    doc_deletes: AtomicU64,
    doc_lists: AtomicU64,
    bad_requests: AtomicU64,
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    requests_reused: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    auth_failures: AtomicU64,
    gc_runs: AtomicU64,
    requests_in_flight: AtomicU64,
    panics_recovered: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests handled (any route, any outcome).
    pub requests: u64,
    /// Record-log scans served.
    pub scans: u64,
    /// Records streamed out across all scans.
    pub records_served: u64,
    /// Records appended across all `POST`s.
    pub records_appended: u64,
    /// Document reads (including 404s).
    pub doc_gets: u64,
    /// Document writes.
    pub doc_puts: u64,
    /// Document deletions.
    pub doc_deletes: u64,
    /// Document-name listings (`GET /v1/docs?prefix=`) — how often islands
    /// surveyed each other's fronts or workers surveyed the lease board.
    pub doc_lists: u64,
    /// Requests rejected with a 4xx status.
    pub bad_requests: u64,
    /// Connections the accept loop handed to the worker pool.
    pub connections_accepted: u64,
    /// Connections currently inside a worker's request loop.
    pub connections_active: u64,
    /// Requests served on an already-used connection — the keep-alive reuse
    /// count (`requests - requests_reused` ≈ connections that carried
    /// traffic).
    pub requests_reused: u64,
    /// Request bytes read off the wire.
    pub bytes_in: u64,
    /// Response bytes written to the wire.
    pub bytes_out: u64,
    /// Requests rejected with `401` for a missing or wrong bearer token.
    pub auth_failures: u64,
    /// Online garbage-collection passes run via `POST /v1/gc`.
    pub gc_runs: u64,
    /// Requests read off the wire and not yet fully answered — what a
    /// graceful shutdown drains to zero.
    pub requests_in_flight: u64,
    /// Worker panics caught and converted into `500` responses; the pool
    /// self-heals instead of shrinking.
    pub panics_recovered: u64,
}

impl ServeStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            records_served: self.records_served.load(Ordering::Relaxed),
            records_appended: self.records_appended.load(Ordering::Relaxed),
            doc_gets: self.doc_gets.load(Ordering::Relaxed),
            doc_puts: self.doc_puts.load(Ordering::Relaxed),
            doc_deletes: self.doc_deletes.load(Ordering::Relaxed),
            doc_lists: self.doc_lists.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            requests_reused: self.requests_reused.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            auth_failures: self.auth_failures.load(Ordering::Relaxed),
            gc_runs: self.gc_runs.load(Ordering::Relaxed),
            requests_in_flight: self.requests_in_flight.load(Ordering::Relaxed),
            panics_recovered: self.panics_recovered.load(Ordering::Relaxed),
        }
    }
}

/// The server's storage: plain memory, or a JSONL directory fronted by the
/// in-memory record index.
enum ServerStore {
    /// Non-persistent default state.
    Memory(MemoryBackend),
    /// Durable directory behind an [`IndexedBackend`] read cache.
    Disk { dir: PathBuf, index: IndexedBackend },
}

impl ServerStore {
    fn backend(&self) -> &dyn StoreBackend {
        match self {
            ServerStore::Memory(memory) => memory,
            ServerStore::Disk { index, .. } => index,
        }
    }
}

/// Shared server state: the backing store plus counters and limits.
struct ServerState {
    store: ServerStore,
    token: Option<String>,
    idle_timeout: Duration,
    request_timeout: Duration,
    drain_timeout: Duration,
    workers: usize,
    stats: ServeStats,
    started: Instant,
    /// Readiness toggle: while draining, `/v1/healthz` answers `503`
    /// (still **live**, no longer **ready**) and every response carries
    /// `Connection: close` — in-flight requests are answered, new work is
    /// shed.
    draining: AtomicBool,
    /// Terminal toggle, set once the drain window has closed: idle
    /// keep-alive connections stop being answered — a request arriving after
    /// this point sees the connection close, exactly like a dead server.
    halted: AtomicBool,
}

/// A server bound to its listener but not yet serving; lets callers learn
/// the (possibly ephemeral) address before the accept loop starts.
pub struct BoundServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    state: Arc<ServerState>,
    thread: Option<thread::JoinHandle<()>>,
}

/// Binds a server to `config.addr` without serving yet. A disk-backed server
/// preloads its record index here — every existing log is replayed exactly
/// once, before the first request.
///
/// # Errors
///
/// Propagates bind failures and store-directory errors.
pub fn bind(config: &ServeConfig) -> std::io::Result<BoundServer> {
    let store = match &config.store_dir {
        Some(dir) => {
            let local = LocalJsonlBackend::open_with(dir, config.durability)
                .map_err(std::io::Error::other)?;
            let index = IndexedBackend::new(Box::new(local));
            let logs = list_record_logs(dir).map_err(std::io::Error::other)?;
            index.warm(&logs).map_err(std::io::Error::other)?;
            ServerStore::Disk {
                dir: dir.clone(),
                index,
            }
        }
        None => ServerStore::Memory(MemoryBackend::new()),
    };
    let listener = TcpListener::bind(&config.addr)?;
    let workers = if config.workers == 0 {
        default_workers()
    } else {
        config.workers
    };
    Ok(BoundServer {
        listener,
        state: Arc::new(ServerState {
            store,
            token: config.token.clone(),
            idle_timeout: config.idle_timeout,
            request_timeout: config.request_timeout,
            drain_timeout: config.drain_timeout,
            workers,
            stats: ServeStats::default(),
            started: Instant::now(),
            draining: AtomicBool::new(false),
            halted: AtomicBool::new(false),
        }),
    })
}

/// Binds and serves on a background thread, returning a [`ServerHandle`].
///
/// # Errors
///
/// Propagates bind failures and store-directory errors.
pub fn spawn(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    bind(config)?.spawn()
}

/// Binds and serves on the calling thread until a shutdown signal arrives.
/// This is the `serve` binary's entry point.
///
/// On Unix, `SIGTERM` and `SIGINT` trigger a **graceful** shutdown: the
/// server stops accepting, answers what is already in flight (bounded by
/// [`ServeConfig::drain_timeout`]), fsyncs a disk-backed store, and returns.
/// On other platforms it serves forever.
///
/// # Errors
///
/// Propagates bind failures and store-directory errors.
pub fn run(config: &ServeConfig) -> std::io::Result<()> {
    let bound = bind(config)?;
    eprintln!(
        "pmlp-serve listening on http://{} ({}, {} workers{})",
        bound.local_addr()?,
        bound.state.store.backend().describe(),
        bound.state.workers,
        if bound.state.token.is_some() {
            ", bearer auth"
        } else {
            ""
        }
    );
    #[cfg(unix)]
    {
        install_shutdown_signal_handlers();
        let handle = bound.spawn()?;
        while !SHUTDOWN_REQUESTED.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(100));
        }
        eprintln!("pmlp-serve: shutdown signal received; draining in-flight requests");
        handle.stop();
        eprintln!("pmlp-serve: drained and flushed; bye");
        Ok(())
    }
    #[cfg(not(unix))]
    {
        bound.serve(&Arc::new(AtomicBool::new(false)));
        Ok(())
    }
}

/// Set by the `SIGTERM`/`SIGINT` handler; polled by [`run`]'s main thread.
#[cfg(unix)]
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Installs async-signal-safe handlers for `SIGTERM` (15) and `SIGINT` (2)
/// that only flip [`SHUTDOWN_REQUESTED`] — all real shutdown work happens on
/// the main thread. Uses the raw libc `signal` symbol (already linked by
/// `std`) to stay dependency-free.
#[cfg(unix)]
fn install_shutdown_signal_handlers() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_shutdown_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_shutdown_signal as *const () as usize);
        signal(SIGINT, on_shutdown_signal as *const () as usize);
    }
}

impl BoundServer {
    /// The address the listener is bound to.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Moves the accept loop onto a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::clone(&self.state);
        let stop_flag = Arc::clone(&stop);
        let thread = thread::spawn(move || self.serve(&stop_flag));
        Ok(ServerHandle {
            addr,
            stop,
            state,
            thread: Some(thread),
        })
    }

    /// The accept loop: sockets go onto a channel drained by the bounded
    /// worker pool, until `stop` flips. Dropping the sender (on exit) is what
    /// winds the idle workers down.
    fn serve(&self, stop: &Arc<AtomicBool>) {
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        for _ in 0..self.state.workers {
            let state = Arc::clone(&self.state);
            let receiver = Arc::clone(&receiver);
            let stop = Arc::clone(stop);
            thread::spawn(move || worker_loop(&state, &receiver, &stop));
        }
        for stream in self.listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            match stream {
                Ok(stream) => {
                    self.state
                        .stats
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    if sender.send(stream).is_err() {
                        break;
                    }
                }
                Err(err) => {
                    eprintln!("pmlp-serve: accept failed: {err}");
                }
            }
        }
        // The sender drops here: idle workers see a disconnected channel and
        // exit; busy ones finish their current connection first.
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The base URL workers pass as `--remote-store`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.state.stats.snapshot()
    }

    /// Flips the server to **draining**: `/v1/healthz` starts answering
    /// `503` (live but not ready — a load balancer's cue to shift traffic),
    /// every response carries `Connection: close`, and each connection is
    /// shed after its next answer. The server keeps accepting and answering
    /// until [`stop`](Self::stop) — this is the first half of a graceful
    /// shutdown, exposed for rolling restarts.
    pub fn drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
    }

    /// Gracefully stops the server: stops accepting, answers every request
    /// already read off the wire (bounded by [`ServeConfig::drain_timeout`]),
    /// then fsyncs a disk-backed store before returning. Idle keep-alive
    /// peers do not block shutdown — their workers are detached and their
    /// sockets die with the process.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        // Drain first, then stop: workers that already read a request see
        // `draining` and answer it (with `Connection: close`) instead of
        // slamming the door mid-request.
        self.state.draining.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
        // Wait (bounded) for in-flight requests to finish answering.
        let deadline = Instant::now() + self.state.drain_timeout;
        while self.state.stats.requests_in_flight.load(Ordering::SeqCst) > 0
            && Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(2));
        }
        let abandoned = self.state.stats.requests_in_flight.load(Ordering::SeqCst);
        if abandoned > 0 {
            eprintln!("pmlp-serve: drain deadline passed with {abandoned} request(s) in flight");
        }
        // The drain window is over: idle keep-alive peers now see their next
        // request go unanswered (connection closed), the same as a dead
        // server — a stopped server must not keep quietly serving traffic.
        self.state.halted.store(true, Ordering::SeqCst);
        // Push everything the page cache still holds onto the platters; a
        // graceful exit must never cost records, whatever the durability
        // policy.
        if let Err(err) = self.state.store.backend().flush() {
            eprintln!("pmlp-serve: flush on shutdown failed: {err}");
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// One pool worker: drain connections off the shared channel until it
/// disconnects (server shutdown).
///
/// Each connection is handled under `catch_unwind`, so a panic anywhere in
/// the request path costs that one connection, not the worker — the pool
/// never shrinks. (The route dispatcher additionally catches panics
/// per-request so the peer gets a `500` instead of a reset; this outer net
/// covers the I/O layers around it.)
fn worker_loop(
    state: &Arc<ServerState>,
    receiver: &Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    stop: &Arc<AtomicBool>,
) {
    loop {
        let next = receiver.lock().expect("worker queue lock").recv();
        match next {
            Ok(stream) => {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(stream, state, stop);
                }));
                if caught.is_err() {
                    state.stats.panics_recovered.fetch_add(1, Ordering::Relaxed);
                    eprintln!("pmlp-serve: worker recovered from a connection-handler panic");
                }
            }
            Err(_) => break,
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
    }
}

/// The per-connection request loop: serve keep-alive requests until the peer
/// closes, asks to close, goes idle, stalls past the request deadline, or the
/// server shuts down.
fn handle_connection(mut stream: TcpStream, state: &ServerState, stop: &AtomicBool) {
    struct ActiveGuard<'a>(&'a AtomicU64);
    impl Drop for ActiveGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    state
        .stats
        .connections_active
        .fetch_add(1, Ordering::Relaxed);
    let _active = ActiveGuard(&state.stats.connections_active);
    stream.set_nodelay(true).ok();

    let mut served_on_connection = 0u64;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let mut bytes_in = 0u64;
        let outcome = read_request(
            &mut stream,
            state.idle_timeout,
            state.request_timeout,
            &mut bytes_in,
        );
        state.stats.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        let request = match outcome {
            Ok(Some(request)) => request,
            Ok(None) => break, // clean close or idle timeout between requests
            Err(ReadError::TimedOut) => {
                state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                if let Ok(n) = respond(
                    &mut stream,
                    408,
                    "Request Timeout",
                    "text/plain",
                    "request timed out\n",
                    false,
                ) {
                    state.stats.bytes_out.fetch_add(n, Ordering::Relaxed);
                }
                break;
            }
            Err(ReadError::Malformed(why)) => {
                state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                if let Ok(n) = respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "text/plain",
                    &format!("bad request: {why}\n"),
                    false,
                ) {
                    state.stats.bytes_out.fetch_add(n, Ordering::Relaxed);
                }
                break;
            }
            Err(ReadError::Disconnected) => break,
        };
        let draining = state.draining.load(Ordering::SeqCst);
        if state.halted.load(Ordering::SeqCst) || (stop.load(Ordering::Relaxed) && !draining) {
            // Hard abort: close without answering — the client retries on a
            // fresh connection and learns the server is gone. (A graceful
            // shutdown sets `draining` first, so requests already read are
            // answered below.)
            break;
        }
        // A fully-read request is in flight until its response is written;
        // graceful shutdown waits for this counter, and the guard makes the
        // decrement panic-safe.
        state
            .stats
            .requests_in_flight
            .fetch_add(1, Ordering::SeqCst);
        let _in_flight = ActiveGuard(&state.stats.requests_in_flight);
        state.stats.requests.fetch_add(1, Ordering::Relaxed);
        if served_on_connection > 0 {
            state.stats.requests_reused.fetch_add(1, Ordering::Relaxed);
        }
        served_on_connection += 1;

        let (status, reason, content_type, body) = if authorized(&request, state) {
            // Per-request panic isolation: a panicking handler answers `500`
            // and the connection closes; the worker (and its siblings'
            // connections) are unaffected.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(&request, state)))
            {
                Ok(answer) => answer,
                Err(_) => {
                    state.stats.panics_recovered.fetch_add(1, Ordering::Relaxed);
                    eprintln!("pmlp-serve: request handler panicked (answered 500)");
                    (
                        500,
                        "Internal Server Error",
                        "text/plain",
                        "internal error: handler panicked\n".to_string(),
                    )
                }
            }
        } else {
            state.stats.auth_failures.fetch_add(1, Ordering::Relaxed);
            (
                401,
                "Unauthorized",
                "text/plain",
                "missing or invalid bearer token\n".to_string(),
            )
        };
        if status >= 400 {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        }
        let keep_alive = !request.close
            && status != 500
            && !stop.load(Ordering::Relaxed)
            && !state.draining.load(Ordering::SeqCst);
        match respond(&mut stream, status, reason, content_type, &body, keep_alive) {
            Ok(n) => {
                state.stats.bytes_out.fetch_add(n, Ordering::Relaxed);
            }
            Err(_) => break,
        }
        if !keep_alive {
            break;
        }
    }
}

/// Bearer-auth check: a configured token gates everything except the
/// liveness probe.
fn authorized(request: &Request, state: &ServerState) -> bool {
    match &state.token {
        None => true,
        Some(_) if request.path == "/v1/healthz" => true,
        Some(token) => request.bearer.as_deref() == Some(token.as_str()),
    }
}

/// Dispatches one request, returning `(status, reason, content type, body)`.
fn route(request: &Request, state: &ServerState) -> (u16, &'static str, &'static str, String) {
    let not_found = || {
        (
            404,
            "Not Found",
            "text/plain",
            "unknown resource\n".to_string(),
        )
    };
    let backend = state.store.backend();
    // The target arrives with its query string attached; split it off before
    // segment matching so `/v1/docs?prefix=x` routes like `/v1/docs`.
    let (path, query) = request
        .path
        .split_once('?')
        .unwrap_or((request.path.as_str(), ""));
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => {
            // Live vs ready: answering at all is liveness; the status code
            // tells a load balancer whether to send new traffic. A draining
            // server is live (it answers) but not ready (`503`).
            let draining = state.draining.load(Ordering::SeqCst);
            let body = Value::Object(vec![
                ("magic".into(), Value::String("pmlp-serve".into())),
                (
                    "store_version".into(),
                    Value::Number(f64::from(pmlp_core::store::STORE_VERSION)),
                ),
                (
                    "status".into(),
                    Value::String(if draining { "draining" } else { "ok" }.into()),
                ),
            ])
            .render_compact();
            if draining {
                (503, "Service Unavailable", "application/json", body)
            } else {
                (200, "OK", "application/json", body)
            }
        }
        ("GET", ["v1", "stats"]) => (200, "OK", "application/json", render_stats(state)),
        ("POST", ["v1", "gc"]) => handle_gc(state, &request.body),
        ("GET", ["v1", "records", name, fp]) => match parse_record_target(name, fp) {
            Some(fingerprint) => match backend.scan(name, fingerprint) {
                Ok(outcome) => {
                    state.stats.scans.fetch_add(1, Ordering::Relaxed);
                    state
                        .stats
                        .records_served
                        .fetch_add(outcome.records.len() as u64, Ordering::Relaxed);
                    let mut body = header_line(fingerprint);
                    body.push('\n');
                    for record in &outcome.records {
                        body.push_str(&record_line(record));
                        body.push('\n');
                    }
                    (200, "OK", "application/jsonl", body)
                }
                Err(err) => (
                    500,
                    "Internal Server Error",
                    "text/plain",
                    format!("{err}\n"),
                ),
            },
            None => not_found(),
        },
        ("POST" | "PUT", ["v1", "records", name, fp]) => match parse_record_target(name, fp) {
            Some(fingerprint) => {
                // Parse every line before appending any: a malformed batch is
                // rejected whole instead of half-applied.
                let mut records = Vec::new();
                for line in request.body.lines().filter(|l| !l.trim().is_empty()) {
                    match parse_record_line(line) {
                        Ok(record) => records.push(record),
                        Err(err) => {
                            return (400, "Bad Request", "text/plain", format!("{err}\n"));
                        }
                    }
                }
                if let Err(err) = backend.append_batch(name, fingerprint, &records) {
                    return (
                        500,
                        "Internal Server Error",
                        "text/plain",
                        format!("{err}\n"),
                    );
                }
                state
                    .stats
                    .records_appended
                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                (204, "No Content", "text/plain", String::new())
            }
            None => not_found(),
        },
        ("GET", ["v1", "docs"]) => {
            let prefix = query
                .split('&')
                .find_map(|pair| pair.strip_prefix("prefix="))
                .unwrap_or("");
            if !prefix.is_empty() && !safe_component(prefix) {
                return (
                    400,
                    "Bad Request",
                    "text/plain",
                    "prefix must be a safe document-name component\n".into(),
                );
            }
            state.stats.doc_lists.fetch_add(1, Ordering::Relaxed);
            match backend.list_docs(prefix) {
                Ok(names) => (
                    200,
                    "OK",
                    "application/json",
                    Value::Array(names.into_iter().map(Value::String).collect()).render_compact(),
                ),
                Err(err) => (
                    500,
                    "Internal Server Error",
                    "text/plain",
                    format!("{err}\n"),
                ),
            }
        }
        ("GET", ["v1", "docs", name]) if safe_component(name) => {
            state.stats.doc_gets.fetch_add(1, Ordering::Relaxed);
            match backend.get_doc(name) {
                Ok(Some(doc)) => (200, "OK", "application/json", doc),
                Ok(None) => (404, "Not Found", "text/plain", "no such document\n".into()),
                Err(err) => (
                    500,
                    "Internal Server Error",
                    "text/plain",
                    format!("{err}\n"),
                ),
            }
        }
        ("PUT" | "POST", ["v1", "docs", name]) if safe_component(name) => {
            match backend.put_doc(name, &request.body) {
                Ok(()) => {
                    state.stats.doc_puts.fetch_add(1, Ordering::Relaxed);
                    (204, "No Content", "text/plain", String::new())
                }
                Err(err) => (
                    500,
                    "Internal Server Error",
                    "text/plain",
                    format!("{err}\n"),
                ),
            }
        }
        ("DELETE", ["v1", "docs", name]) if safe_component(name) => {
            match backend.remove_doc(name) {
                Ok(()) => {
                    state.stats.doc_deletes.fetch_add(1, Ordering::Relaxed);
                    (204, "No Content", "text/plain", String::new())
                }
                Err(err) => (
                    500,
                    "Internal Server Error",
                    "text/plain",
                    format!("{err}\n"),
                ),
            }
        }
        _ => not_found(),
    }
}

/// `POST /v1/gc`: an online garbage-collection pass. The optional JSON body
/// carries `live` (an array of 16-hex baseline fingerprints to keep; when
/// absent every currently present fingerprint is considered live, making the
/// pass a pure compaction) and `compact_threshold_bytes` (see [`GcPolicy`]).
/// Disk-backed servers run [`gc_store_dir`] and then invalidate the record
/// index so reads reload the rewritten files; the memory tier compacts every
/// log (it has no files to drop). Answers the [`GcReport`] as JSON.
fn handle_gc(state: &ServerState, body: &str) -> (u16, &'static str, &'static str, String) {
    let bad = |msg: &str| (400, "Bad Request", "text/plain", format!("{msg}\n"));
    let mut policy = GcPolicy::default();
    let mut live: Option<Vec<u64>> = None;
    if !body.trim().is_empty() {
        let Ok(value) = serde::json::parse(body) else {
            return bad("gc body must be a JSON object");
        };
        if let Some(threshold) = value.get("compact_threshold_bytes") {
            match threshold {
                Value::Number(n) if *n >= 0.0 => policy.compact_threshold_bytes = *n as u64,
                _ => return bad("compact_threshold_bytes must be a non-negative number"),
            }
        }
        if let Some(fingerprints) = value.get("live") {
            let Value::Array(items) = fingerprints else {
                return bad("live must be an array of hex fingerprint strings");
            };
            let mut parsed = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str().and_then(|s| u64::from_str_radix(s, 16).ok()) {
                    Some(fp) => parsed.push(fp),
                    None => return bad("live must be an array of hex fingerprint strings"),
                }
            }
            live = Some(parsed);
        }
    }
    state.stats.gc_runs.fetch_add(1, Ordering::Relaxed);
    let report = match &state.store {
        ServerStore::Disk { dir, index } => {
            let live = match live {
                Some(live) => Ok(live),
                // No explicit live set: keep every fingerprint currently
                // present — the pass compacts without dropping anything.
                None => list_record_logs(dir)
                    .map(|logs| logs.into_iter().map(|(_, fp)| fp).collect::<Vec<u64>>()),
            };
            let result = live.and_then(|live| gc_store_dir(dir, &live, &policy));
            // GC rewrote files underneath the index; reads must reload.
            index.invalidate();
            result
        }
        ServerStore::Memory(memory) => (|| {
            let mut report = GcReport::default();
            for (name, fingerprint) in memory.logs() {
                report.duplicates_merged += memory.compact(&name, fingerprint)?;
                report.files_kept += 1;
            }
            Ok(report)
        })(),
    };
    match report {
        Ok(report) => (200, "OK", "application/json", render_gc_report(&report)),
        Err(err) => (
            500,
            "Internal Server Error",
            "text/plain",
            format!("{err}\n"),
        ),
    }
}

fn render_gc_report(report: &GcReport) -> String {
    let n = |v: u64| Value::Number(v as f64);
    Value::Object(vec![
        ("magic".into(), Value::String("pmlp-serve-gc".into())),
        ("files_kept".into(), n(report.files_kept as u64)),
        ("files_dropped".into(), n(report.files_dropped as u64)),
        ("bytes_reclaimed".into(), n(report.bytes_reclaimed)),
        (
            "duplicates_merged".into(),
            n(report.duplicates_merged as u64),
        ),
        ("corrupt_dropped".into(), n(report.corrupt_dropped as u64)),
    ])
    .render_pretty()
}

/// Validates a `/v1/records/{name}/{fp}` target: the shard label must be a
/// safe path component and the fingerprint fixed-width hex.
fn parse_record_target(name: &str, fp: &str) -> Option<u64> {
    if !safe_component(name) || fp.len() != 16 {
        return None;
    }
    u64::from_str_radix(fp, 16).ok()
}

fn render_stats(state: &ServerState) -> String {
    let stats = state.stats.snapshot();
    let n = |v: u64| Value::Number(v as f64);
    let (index_logs, index_records) = match &state.store {
        ServerStore::Disk { index, .. } => index.resident(),
        ServerStore::Memory(memory) => (memory.log_count(), memory.record_count()),
    };
    Value::Object(vec![
        ("magic".into(), Value::String("pmlp-serve-stats".into())),
        (
            "backend".into(),
            Value::String(state.store.backend().describe()),
        ),
        (
            "uptime_secs".into(),
            Value::Number(state.started.elapsed().as_secs_f64()),
        ),
        ("workers".into(), n(state.workers as u64)),
        ("requests".into(), n(stats.requests)),
        ("scans".into(), n(stats.scans)),
        ("records_served".into(), n(stats.records_served)),
        ("records_appended".into(), n(stats.records_appended)),
        ("doc_gets".into(), n(stats.doc_gets)),
        ("doc_puts".into(), n(stats.doc_puts)),
        ("doc_deletes".into(), n(stats.doc_deletes)),
        ("doc_lists".into(), n(stats.doc_lists)),
        ("bad_requests".into(), n(stats.bad_requests)),
        ("connections_accepted".into(), n(stats.connections_accepted)),
        ("connections_active".into(), n(stats.connections_active)),
        ("requests_reused".into(), n(stats.requests_reused)),
        ("bytes_in".into(), n(stats.bytes_in)),
        ("bytes_out".into(), n(stats.bytes_out)),
        ("auth_failures".into(), n(stats.auth_failures)),
        ("gc_runs".into(), n(stats.gc_runs)),
        ("index_logs".into(), n(index_logs as u64)),
        ("index_records".into(), n(index_records as u64)),
        ("requests_in_flight".into(), n(stats.requests_in_flight)),
        ("panics_recovered".into(), n(stats.panics_recovered)),
        (
            "status".into(),
            Value::String(
                if state.draining.load(Ordering::SeqCst) {
                    "draining"
                } else {
                    "ok"
                }
                .into(),
            ),
        ),
        ("resilience".into(), render_resilience(state)),
    ])
    .render_pretty()
}

/// The backend's fault-tolerance counters as a JSON object (all zeros for
/// backends that do not track them — a purely local server has nothing to
/// retry).
fn render_resilience(state: &ServerState) -> Value {
    let r = state.store.backend().resilience().unwrap_or_default();
    let n = |v: usize| Value::Number(v as f64);
    Value::Object(vec![
        ("remote_retries".into(), n(r.remote_retries)),
        ("transient_errors".into(), n(r.transient_errors)),
        ("permanent_errors".into(), n(r.permanent_errors)),
        ("breaker_opens".into(), n(r.breaker_opens)),
        ("breaker_recoveries".into(), n(r.breaker_recoveries)),
        ("journaled_records".into(), n(r.journaled_records)),
        ("replayed_records".into(), n(r.replayed_records)),
        ("journal_dropped".into(), n(r.journal_dropped)),
    ])
}
