//! # pmlp-serve — the networked evaluation-cache tier
//!
//! A dependency-free HTTP/1.1 key-value server over
//! `std::net::TcpListener` that exposes a [`StoreBackend`] to a fleet of
//! workers: candidate evaluations (and search checkpoints / campaign
//! completion markers) computed by one machine become cache hits on every
//! other machine pointed at the same server via `--remote-store URL`.
//!
//! The wire format **is** the store's sealed-envelope JSONL (versioned by
//! [`pmlp_core::store::STORE_VERSION`]): a record scan response is
//! byte-compatible with a local record log, so the `pmlp-core`
//! [`RemoteBackend`](pmlp_core::store::RemoteBackend) client parses it with
//! the same corruption-tolerant code path as a file. Endpoints:
//!
//! | Method + path | Meaning |
//! |---------------|---------|
//! | `GET /v1/healthz` | liveness probe |
//! | `GET /v1/stats` | request/record counters (JSON) |
//! | `GET /v1/records/{name}/{fp}` | scan: header line + one record per line |
//! | `POST /v1/records/{name}/{fp}` | append the record line(s) in the body |
//! | `GET /v1/docs/{name}` | read a document (404 when absent) |
//! | `PUT /v1/docs/{name}` | write a document |
//! | `DELETE /v1/docs/{name}` | delete a document |
//!
//! State lives in an in-memory backend by default, or durably in a local
//! JSONL store directory (`ServeConfig::store_dir`) — the same on-disk format
//! a single-machine run writes, so an existing `--store` directory can be
//! promoted to a shared server without conversion.
//!
//! The accept loop is threaded (one handler thread per connection,
//! `Connection: close`), which is plenty for the request rates a campaign
//! fleet generates — the expensive work is candidate evaluation, not cache
//! I/O.
//!
//! # Example
//!
//! ```no_run
//! use pmlp_serve::{ServeConfig, spawn};
//!
//! # fn main() -> std::io::Result<()> {
//! let handle = spawn(&ServeConfig::default())?; // 127.0.0.1, ephemeral port
//! println!("serving on {}", handle.url());
//! // ... point workers at handle.url() via --remote-store ...
//! handle.stop();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod http;

use http::{read_request, respond, Request};
use pmlp_core::store::{
    header_line, parse_record_line, record_line, safe_component, LocalJsonlBackend, MemoryBackend,
    StoreBackend,
};
use serde::json::Value;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// How a server is stood up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Local JSONL directory to persist records and documents into; `None`
    /// keeps everything in memory for the server's lifetime.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            store_dir: None,
        }
    }
}

/// Monotonic request/record counters, rendered by `GET /v1/stats`.
#[derive(Debug, Default)]
struct ServeStats {
    requests: AtomicU64,
    scans: AtomicU64,
    records_served: AtomicU64,
    records_appended: AtomicU64,
    doc_gets: AtomicU64,
    doc_puts: AtomicU64,
    doc_deletes: AtomicU64,
    bad_requests: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests handled (any route, any outcome).
    pub requests: u64,
    /// Record-log scans served.
    pub scans: u64,
    /// Records streamed out across all scans.
    pub records_served: u64,
    /// Records appended across all `POST`s.
    pub records_appended: u64,
    /// Document reads (including 404s).
    pub doc_gets: u64,
    /// Document writes.
    pub doc_puts: u64,
    /// Document deletions.
    pub doc_deletes: u64,
    /// Requests rejected with a 4xx status.
    pub bad_requests: u64,
}

impl ServeStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            records_served: self.records_served.load(Ordering::Relaxed),
            records_appended: self.records_appended.load(Ordering::Relaxed),
            doc_gets: self.doc_gets.load(Ordering::Relaxed),
            doc_puts: self.doc_puts.load(Ordering::Relaxed),
            doc_deletes: self.doc_deletes.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
        }
    }
}

/// Shared server state: the backing store plus counters.
struct ServerState {
    backend: Box<dyn StoreBackend>,
    stats: ServeStats,
    started: Instant,
}

/// A server bound to its listener but not yet serving; lets callers learn
/// the (possibly ephemeral) address before the accept loop starts.
pub struct BoundServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    state: Arc<ServerState>,
    thread: Option<thread::JoinHandle<()>>,
}

/// Binds a server to `config.addr` without serving yet.
///
/// # Errors
///
/// Propagates bind failures and store-directory errors.
pub fn bind(config: &ServeConfig) -> std::io::Result<BoundServer> {
    let backend: Box<dyn StoreBackend> = match &config.store_dir {
        Some(dir) => Box::new(LocalJsonlBackend::open(dir).map_err(std::io::Error::other)?),
        None => Box::new(MemoryBackend::new()),
    };
    let listener = TcpListener::bind(&config.addr)?;
    Ok(BoundServer {
        listener,
        state: Arc::new(ServerState {
            backend,
            stats: ServeStats::default(),
            started: Instant::now(),
        }),
    })
}

/// Binds and serves on a background thread, returning a [`ServerHandle`].
///
/// # Errors
///
/// Propagates bind failures and store-directory errors.
pub fn spawn(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    bind(config)?.spawn()
}

/// Binds and serves on the calling thread, forever. This is the `serve`
/// binary's entry point.
///
/// # Errors
///
/// Propagates bind failures and store-directory errors.
pub fn run(config: &ServeConfig) -> std::io::Result<()> {
    let bound = bind(config)?;
    eprintln!(
        "pmlp-serve listening on http://{} ({})",
        bound.local_addr()?,
        bound.state.backend.describe()
    );
    bound.serve(&AtomicBool::new(false));
    Ok(())
}

impl BoundServer {
    /// The address the listener is bound to.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Moves the accept loop onto a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::clone(&self.state);
        let stop_flag = Arc::clone(&stop);
        let thread = thread::spawn(move || self.serve(&stop_flag));
        Ok(ServerHandle {
            addr,
            stop,
            state,
            thread: Some(thread),
        })
    }

    /// The threaded accept loop: one handler thread per connection, until
    /// `stop` flips.
    fn serve(&self, stop: &AtomicBool) {
        for stream in self.listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    thread::spawn(move || handle_connection(stream, &state));
                }
                Err(err) => {
                    eprintln!("pmlp-serve: accept failed: {err}");
                }
            }
        }
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The base URL workers pass as `--remote-store`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.state.stats.snapshot()
    }

    /// Stops the accept loop and joins the server thread. In-flight handler
    /// threads finish their single request on their own.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .ok();
    let request = match read_request(&mut stream) {
        Ok(Some(request)) => request,
        Ok(None) => return, // shutdown poke or idle close
        Err(_) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = respond(
                &mut stream,
                400,
                "Bad Request",
                "text/plain",
                "bad request\n",
            );
            return;
        }
    };
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    let (status, reason, content_type, body) = route(&request, state);
    if status >= 400 {
        state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
    }
    let _ = respond(&mut stream, status, reason, content_type, &body);
}

/// Dispatches one request, returning `(status, reason, content type, body)`.
fn route(request: &Request, state: &ServerState) -> (u16, &'static str, &'static str, String) {
    let not_found = || {
        (
            404,
            "Not Found",
            "text/plain",
            "unknown resource\n".to_string(),
        )
    };
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => (
            200,
            "OK",
            "application/json",
            Value::Object(vec![
                ("magic".into(), Value::String("pmlp-serve".into())),
                (
                    "store_version".into(),
                    Value::Number(f64::from(pmlp_core::store::STORE_VERSION)),
                ),
                ("status".into(), Value::String("ok".into())),
            ])
            .render_compact(),
        ),
        ("GET", ["v1", "stats"]) => (200, "OK", "application/json", render_stats(state)),
        ("GET", ["v1", "records", name, fp]) => match parse_record_target(name, fp) {
            Some(fingerprint) => match state.backend.scan(name, fingerprint) {
                Ok(outcome) => {
                    state.stats.scans.fetch_add(1, Ordering::Relaxed);
                    state
                        .stats
                        .records_served
                        .fetch_add(outcome.records.len() as u64, Ordering::Relaxed);
                    let mut body = header_line(fingerprint);
                    body.push('\n');
                    for record in &outcome.records {
                        body.push_str(&record_line(record));
                        body.push('\n');
                    }
                    (200, "OK", "application/jsonl", body)
                }
                Err(err) => (
                    500,
                    "Internal Server Error",
                    "text/plain",
                    format!("{err}\n"),
                ),
            },
            None => not_found(),
        },
        ("POST" | "PUT", ["v1", "records", name, fp]) => match parse_record_target(name, fp) {
            Some(fingerprint) => {
                // Parse every line before appending any: a malformed batch is
                // rejected whole instead of half-applied.
                let mut records = Vec::new();
                for line in request.body.lines().filter(|l| !l.trim().is_empty()) {
                    match parse_record_line(line) {
                        Ok(record) => records.push(record),
                        Err(err) => {
                            return (400, "Bad Request", "text/plain", format!("{err}\n"));
                        }
                    }
                }
                for record in &records {
                    if let Err(err) = state.backend.append(name, fingerprint, record) {
                        return (
                            500,
                            "Internal Server Error",
                            "text/plain",
                            format!("{err}\n"),
                        );
                    }
                }
                state
                    .stats
                    .records_appended
                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                (204, "No Content", "text/plain", String::new())
            }
            None => not_found(),
        },
        ("GET", ["v1", "docs", name]) if safe_component(name) => {
            state.stats.doc_gets.fetch_add(1, Ordering::Relaxed);
            match state.backend.get_doc(name) {
                Ok(Some(doc)) => (200, "OK", "application/json", doc),
                Ok(None) => (404, "Not Found", "text/plain", "no such document\n".into()),
                Err(err) => (
                    500,
                    "Internal Server Error",
                    "text/plain",
                    format!("{err}\n"),
                ),
            }
        }
        ("PUT" | "POST", ["v1", "docs", name]) if safe_component(name) => {
            match state.backend.put_doc(name, &request.body) {
                Ok(()) => {
                    state.stats.doc_puts.fetch_add(1, Ordering::Relaxed);
                    (204, "No Content", "text/plain", String::new())
                }
                Err(err) => (
                    500,
                    "Internal Server Error",
                    "text/plain",
                    format!("{err}\n"),
                ),
            }
        }
        ("DELETE", ["v1", "docs", name]) if safe_component(name) => {
            match state.backend.remove_doc(name) {
                Ok(()) => {
                    state.stats.doc_deletes.fetch_add(1, Ordering::Relaxed);
                    (204, "No Content", "text/plain", String::new())
                }
                Err(err) => (
                    500,
                    "Internal Server Error",
                    "text/plain",
                    format!("{err}\n"),
                ),
            }
        }
        _ => not_found(),
    }
}

/// Validates a `/v1/records/{name}/{fp}` target: the shard label must be a
/// safe path component and the fingerprint fixed-width hex.
fn parse_record_target(name: &str, fp: &str) -> Option<u64> {
    if !safe_component(name) || fp.len() != 16 {
        return None;
    }
    u64::from_str_radix(fp, 16).ok()
}

fn render_stats(state: &ServerState) -> String {
    let stats = state.stats.snapshot();
    let n = |v: u64| Value::Number(v as f64);
    Value::Object(vec![
        ("magic".into(), Value::String("pmlp-serve-stats".into())),
        ("backend".into(), Value::String(state.backend.describe())),
        (
            "uptime_secs".into(),
            Value::Number(state.started.elapsed().as_secs_f64()),
        ),
        ("requests".into(), n(stats.requests)),
        ("scans".into(), n(stats.scans)),
        ("records_served".into(), n(stats.records_served)),
        ("records_appended".into(), n(stats.records_appended)),
        ("doc_gets".into(), n(stats.doc_gets)),
        ("doc_puts".into(), n(stats.doc_puts)),
        ("doc_deletes".into(), n(stats.doc_deletes)),
        ("bad_requests".into(), n(stats.bad_requests)),
    ])
    .render_pretty()
}
