//! An in-process chaos TCP proxy: the network half of the fault-injection
//! harness.
//!
//! [`ChaosProxy`] listens on a loopback port and forwards every connection
//! to an upstream `pmlp-serve` instance, drawing a **fate** for every
//! response chunk from a seeded generator: forwarded cleanly, delayed,
//! dropped mid-stream (a TCP reset from the client's point of view),
//! replaced by protocol garbage, truncated mid-message, or forwarded with a
//! corrupted byte. Drawing per chunk rather than per connection matters
//! because the store client keeps connections alive across requests — one
//! pooled connection can carry a whole campaign, and a per-connection
//! schedule would fault almost none of its traffic. The same seed yields
//! the same fault schedule, so a chaos test is reproducible run over run.
//!
//! Faults are only ever injected on the **server → client** direction (plus
//! connection-level drops): the upstream server's stored state is never
//! poisoned by the proxy, which mirrors the real failure domain — a flaky
//! network corrupts what you *read*, while a half-received append is
//! rejected whole by the server's parse-before-apply contract.
//!
//! [`ChaosProxy::set_healthy`] is the scripted-outage switch: flipping it
//! off severs every established relay **and** drops every new connection —
//! indistinguishable from a dead server even to a client with a warm
//! keep-alive pool — which is how tests exercise the client-side circuit
//! breaker's open → half-open → closed recovery path without killing the
//! real server process.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Per-mille fault probabilities and the fault parameters, drawn for every
/// response chunk from a generator seeded with `seed`. The probabilities
/// are evaluated in order (delay, reset, truncate, garbage, corrupt);
/// whatever remains is a clean forward.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Chance (per 1000 response chunks) of delaying before forwarding.
    pub delay_per_mille: u16,
    /// How long a delayed chunk waits.
    pub delay: Duration,
    /// Chance of dropping the connection instead of forwarding the chunk (a
    /// TCP reset from the client's point of view).
    pub reset_per_mille: u16,
    /// Chance of truncating the response — a taste of the chunk flows, then
    /// the connection dies mid-message.
    pub truncate_per_mille: u16,
    /// Chance of replacing the chunk with non-HTTP garbage bytes and
    /// dropping the connection.
    pub garbage_per_mille: u16,
    /// Chance of flipping one byte in the chunk — wire-level corruption
    /// that still delivers a complete message.
    pub corrupt_per_mille: u16,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x5EED_C4A0_5EED_C4A0,
            delay_per_mille: 100,
            delay: Duration::from_millis(5),
            reset_per_mille: 100,
            truncate_per_mille: 80,
            garbage_per_mille: 80,
            corrupt_per_mille: 80,
        }
    }
}

/// What happened to the traffic that flowed through a proxy.
#[derive(Debug, Default)]
struct ChaosCounters {
    forwarded: AtomicU64,
    delayed: AtomicU64,
    reset: AtomicU64,
    truncated: AtomicU64,
    garbage: AtomicU64,
    corrupted: AtomicU64,
    outage_drops: AtomicU64,
}

/// A point-in-time copy of a proxy's fault counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSnapshot {
    /// Response chunks forwarded cleanly.
    pub forwarded: u64,
    /// Response chunks delayed before forwarding.
    pub delayed: u64,
    /// Connections dropped instead of forwarding a pending chunk.
    pub reset: u64,
    /// Responses cut off mid-message.
    pub truncated: u64,
    /// Responses replaced with protocol garbage.
    pub garbage: u64,
    /// Response chunks whose bytes were corrupted in flight.
    pub corrupted: u64,
    /// Connections dropped or severed by the [`ChaosProxy::set_healthy`]
    /// outage switch.
    pub outage_drops: u64,
}

/// The fate one response chunk draws from the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Forward,
    Delay,
    Reset,
    Truncate,
    Garbage,
    Corrupt,
}

/// A running chaos proxy; dropping (or [`stop`](Self::stop)ping) it closes
/// the listener.
pub struct ChaosProxy {
    addr: SocketAddr,
    healthy: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("healthy", &self.healthy.load(Ordering::SeqCst))
            .finish()
    }
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port forwarding to
    /// `upstream`, injecting faults per `config`.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn spawn(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let healthy = Arc::new(AtomicBool::new(true));
        let counters = Arc::new(ChaosCounters::default());
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let rng = Arc::new(Mutex::new(config.seed | 1));
        let accept_healthy = Arc::clone(&healthy);
        let accept_counters = Arc::clone(&counters);
        let accept_conns = Arc::clone(&conns);
        let accept_stop = Arc::clone(&stop);
        let thread = thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { continue };
                if !accept_healthy.load(Ordering::SeqCst) {
                    // Scripted outage: indistinguishable from a dead server.
                    accept_counters.outage_drops.fetch_add(1, Ordering::Relaxed);
                    drop(client);
                    continue;
                }
                let counters = Arc::clone(&accept_counters);
                let conns = Arc::clone(&accept_conns);
                let rng = Arc::clone(&rng);
                thread::spawn(move || relay(client, upstream, &rng, config, &counters, &conns));
            }
        });
        Ok(ChaosProxy {
            addr,
            healthy,
            counters,
            conns,
            stop,
            thread: Some(thread),
        })
    }

    /// The proxy's own address — what workers point `--remote-store` at.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's base URL.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The scripted-outage switch: while `false`, every new connection is
    /// dropped before a byte flows — and flipping to `false` also severs
    /// every established relay, so a client's warm keep-alive pool cannot
    /// tunnel through the outage.
    pub fn set_healthy(&self, healthy: bool) {
        self.healthy.store(healthy, Ordering::SeqCst);
        if !healthy {
            let severed = {
                let mut conns = self.conns.lock().expect("chaos conns lock");
                std::mem::take(&mut *conns)
            };
            for stream in &severed {
                stream.shutdown(Shutdown::Both).ok();
            }
            self.counters
                .outage_drops
                .fetch_add(severed.len() as u64 / 2, Ordering::Relaxed);
        }
    }

    /// Current fault counters.
    pub fn snapshot(&self) -> ChaosSnapshot {
        ChaosSnapshot {
            forwarded: self.counters.forwarded.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
            reset: self.counters.reset.load(Ordering::Relaxed),
            truncated: self.counters.truncated.load(Ordering::Relaxed),
            garbage: self.counters.garbage.load(Ordering::Relaxed),
            corrupted: self.counters.corrupted.load(Ordering::Relaxed),
            outage_drops: self.counters.outage_drops.load(Ordering::Relaxed),
        }
    }

    /// Total faults injected (everything except clean forwards).
    pub fn faults_injected(&self) -> u64 {
        let s = self.snapshot();
        s.delayed + s.reset + s.truncated + s.garbage + s.corrupted + s.outage_drops
    }

    /// Stops accepting; in-flight relays die with their sockets.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
        for stream in self.conns.lock().expect("chaos conns lock").drain(..) {
            stream.shutdown(Shutdown::Both).ok();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// One xorshift64 step.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Draws the next chunk's fate from the seeded schedule.
fn draw_fate(rng: &Arc<Mutex<u64>>, config: &ChaosConfig) -> Fate {
    let roll = (xorshift(&mut rng.lock().expect("chaos rng lock")) % 1000) as u16;
    let mut threshold = config.delay_per_mille;
    if roll < threshold {
        return Fate::Delay;
    }
    threshold += config.reset_per_mille;
    if roll < threshold {
        return Fate::Reset;
    }
    threshold += config.truncate_per_mille;
    if roll < threshold {
        return Fate::Truncate;
    }
    threshold += config.garbage_per_mille;
    if roll < threshold {
        return Fate::Garbage;
    }
    threshold += config.corrupt_per_mille;
    if roll < threshold {
        return Fate::Corrupt;
    }
    Fate::Forward
}

/// Forwards one client connection to the upstream, drawing a fate per
/// response chunk. Faults touch only the server → client direction, so the
/// upstream's state stays clean; the client sees delays, resets, truncation
/// and corruption exactly as a flaky network would deliver them.
fn relay(
    mut client: TcpStream,
    upstream: SocketAddr,
    rng: &Arc<Mutex<u64>>,
    config: ChaosConfig,
    counters: &Arc<ChaosCounters>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
) {
    let Ok(mut server) = TcpStream::connect(upstream) else {
        // Upstream genuinely down: dropping the client reports exactly that.
        return;
    };
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();
    // Bound the relay threads' lifetime even if both peers go silent.
    let lifetime = Some(Duration::from_secs(120));
    client.set_read_timeout(lifetime).ok();
    server.set_read_timeout(lifetime).ok();

    // Register both sockets with the outage switch so `set_healthy(false)`
    // can sever this relay even while it sits idle in a keep-alive pool.
    {
        let mut conns = conns.lock().expect("chaos conns lock");
        if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
            conns.push(c);
            conns.push(s);
        }
    }

    // Client → server: verbatim copy on its own thread.
    let (Ok(mut client_read), Ok(mut server_write)) = (client.try_clone(), server.try_clone())
    else {
        return;
    };
    let uplink = thread::spawn(move || {
        std::io::copy(&mut client_read, &mut server_write).ok();
        server_write.shutdown(Shutdown::Write).ok();
    });

    // Server → client: the faultable direction.
    let mut buf = [0u8; 4096];
    loop {
        let n = match server.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        match draw_fate(rng, &config) {
            Fate::Forward => {
                counters.forwarded.fetch_add(1, Ordering::Relaxed);
            }
            Fate::Delay => {
                counters.delayed.fetch_add(1, Ordering::Relaxed);
                thread::sleep(config.delay);
            }
            Fate::Reset => {
                // Die without forwarding: the client sees the connection
                // reset mid-request.
                counters.reset.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Fate::Truncate => {
                // Forward a taste of the response, then die mid-message.
                counters.truncated.fetch_add(1, Ordering::Relaxed);
                let keep = n.min(24);
                client.write_all(&buf[..keep]).ok();
                break;
            }
            Fate::Garbage => {
                counters.garbage.fetch_add(1, Ordering::Relaxed);
                client
                    .write_all(b"\x15\x03\x01GARBAGE garbage \xde\xad\xbe\xef not-http\r\n\r\n")
                    .ok();
                break;
            }
            Fate::Corrupt => {
                counters.corrupted.fetch_add(1, Ordering::Relaxed);
                buf[n / 2] ^= 0x01;
            }
        }
        if client.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    client.shutdown(Shutdown::Both).ok();
    server.shutdown(Shutdown::Both).ok();
    uplink.join().ok();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmlp_core::store::StoreBackend;

    /// A clean-forward-only config, for tests that need determinism of a
    /// specific fate.
    fn quiet() -> ChaosConfig {
        ChaosConfig {
            delay_per_mille: 0,
            reset_per_mille: 0,
            truncate_per_mille: 0,
            garbage_per_mille: 0,
            corrupt_per_mille: 0,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn a_quiet_proxy_forwards_requests_verbatim() {
        let server = crate::spawn(&crate::ServeConfig::default()).unwrap();
        let proxy = ChaosProxy::spawn(server.addr(), quiet()).unwrap();
        let client = pmlp_core::store::RemoteBackend::new(&proxy.url()).expect("proxy url parses");
        let description = client.describe();
        assert!(description.contains("pmlp-serve"));
        // A healthz round trip through the proxy answers like the server.
        let scan = client.scan("Seeds", 7).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(proxy.faults_injected(), 0);
        assert!(proxy.snapshot().forwarded >= 1);
        proxy.stop();
        server.stop();
    }

    #[test]
    fn the_outage_switch_drops_connections_like_a_dead_server() {
        let server = crate::spawn(&crate::ServeConfig::default()).unwrap();
        let proxy = ChaosProxy::spawn(server.addr(), quiet()).unwrap();
        let client = pmlp_core::store::RemoteBackend::new(&proxy.url())
            .expect("proxy url parses")
            .with_retry_policy(pmlp_core::store::RetryPolicy::none());
        // Warm the keep-alive pool, then flip the switch: the established
        // relay is severed, not just new connections.
        assert!(client.scan("Seeds", 7).is_ok());
        proxy.set_healthy(false);
        assert!(client.scan("Seeds", 7).is_err());
        assert!(proxy.snapshot().outage_drops >= 1);
        // Back to healthy: the same client reconnects through the proxy.
        proxy.set_healthy(true);
        assert!(client.scan("Seeds", 7).is_ok());
        proxy.stop();
        server.stop();
    }

    #[test]
    fn the_fault_schedule_is_deterministic_per_seed() {
        let config = ChaosConfig::default();
        let draws = |seed: u64| {
            let rng = Arc::new(Mutex::new(seed | 1));
            (0..128)
                .map(|_| draw_fate(&rng, &config))
                .collect::<Vec<Fate>>()
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(99));
        let sample = draws(42);
        assert!(sample.contains(&Fate::Forward));
        assert!(sample.iter().any(|f| *f != Fate::Forward));
    }
}
