//! # printed-mlp — hardware-aware automated neural minimization for printed MLPs
//!
//! Umbrella crate of the DATE 2023 reproduction: re-exports the full stack so
//! applications can depend on a single crate.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`nn`] | `pmlp-nn` | from-scratch MLP training (layers, losses, optimizers, trainer, metrics) |
//! | [`data`] | `pmlp-data` | synthetic UCI-equivalent datasets + CSV loader |
//! | [`hw`] | `pmlp-hw` | bespoke printed-electronics hardware model (EGT cells, CSD multipliers, netlists, area/power/delay) |
//! | [`minimize`] | `pmlp-minimize` | quantization/QAT, pruning, weight clustering |
//! | [`core`] | `pmlp-core` | hardware-aware NSGA-II search, sweeps, Pareto fronts, experiment drivers |
//!
//! ## Quickstart
//!
//! ```no_run
//! use printed_mlp::core::baseline::BaselineDesign;
//! use printed_mlp::core::objective::{evaluate_config, EvaluationContext};
//! use printed_mlp::data::UciDataset;
//! use printed_mlp::minimize::MinimizationConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Train the bespoke baseline for the Seeds classifier ...
//! let baseline = BaselineDesign::train(UciDataset::Seeds, 42)?;
//! // ... and measure what 4-bit quantization buys in circuit area.
//! let ctx = EvaluationContext::new(&baseline);
//! let point = evaluate_config(&ctx, &MinimizationConfig::default().with_weight_bits(4), 0)?;
//! println!("area gain: {:.2}x, accuracy: {:.1}%", point.area_gain(), point.accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Re-export of the search / experiment layer (`pmlp-core`).
pub use pmlp_core as core;
/// Re-export of the dataset substrate (`pmlp-data`).
pub use pmlp_data as data;
/// Re-export of the bespoke hardware model (`pmlp-hw`).
pub use pmlp_hw as hw;
/// Re-export of the minimization techniques (`pmlp-minimize`).
pub use pmlp_minimize as minimize;
/// Re-export of the neural-network substrate (`pmlp-nn`).
pub use pmlp_nn as nn;

/// Commonly used items, importable with `use printed_mlp::prelude::*`.
pub mod prelude {
    pub use pmlp_core::baseline::BaselineDesign;
    pub use pmlp_core::experiment::{Effort, Figure1Experiment, Figure2Experiment};
    pub use pmlp_core::objective::{evaluate_config, DesignPoint, EvaluationContext};
    pub use pmlp_core::{Nsga2, Nsga2Config};
    pub use pmlp_data::{load, UciDataset};
    pub use pmlp_hw::{BespokeMlpCircuit, CellLibrary, CircuitSpec};
    pub use pmlp_minimize::MinimizationConfig;
    pub use pmlp_nn::{Activation, Dataset, Mlp, MlpBuilder, TrainConfig, Trainer};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        // Compile-time check that the re-exports resolve.
        let _config = MinimizationConfig::default();
        let _lib = CellLibrary::egt();
        let _train = TrainConfig::default();
        let _dataset = UciDataset::Seeds;
    }
}
