//! # printed-mlp — hardware-aware automated neural minimization for printed MLPs
//!
//! Umbrella crate of the DATE 2023 reproduction: re-exports the full stack so
//! applications can depend on a single crate.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`nn`] | `pmlp-nn` | from-scratch MLP training (layers, losses, optimizers, trainer, metrics) |
//! | [`data`] | `pmlp-data` | synthetic UCI-equivalent datasets + CSV loader |
//! | [`hw`] | `pmlp-hw` | bespoke printed-electronics hardware model (EGT cells, CSD multipliers, netlists, area/power/delay) |
//! | [`minimize`] | `pmlp-minimize` | quantization/QAT, pruning, weight clustering |
//! | [`core`] | `pmlp-core` | hardware-aware NSGA-II search, sweeps, Pareto fronts, experiment drivers, cross-dataset campaigns |
//! | [`serve`] | `pmlp-serve` | networked evaluation-cache server (HTTP tier over the store wire format) |
//!
//! ## Quickstart
//!
//! This is the `examples/quickstart.rs` flow as a runnable doc-test (reduced
//! training budget so `cargo test` stays fast; the example uses the paper
//! budget):
//!
//! ```
//! use printed_mlp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Train the bespoke Seeds baseline and wrap it in the evaluation engine.
//! let budget = BaselineConfig { epochs: 8, ..BaselineConfig::default() };
//! let engine = EvalEngine::train_with(UciDataset::Seeds, 42, &budget)?
//!     .with_fine_tune_epochs(1);
//!
//! // Measure what 4-bit quantization buys in circuit area.
//! let point = engine.evaluate(&MinimizationConfig::default().with_weight_bits(4))?;
//! assert!(point.area_gain() > 1.0, "4-bit designs are smaller than the 8-bit baseline");
//!
//! // A second request for the same configuration is answered from the cache.
//! let again = engine.evaluate(&point.config)?;
//! assert_eq!(again, point);
//! assert_eq!(engine.stats().hits, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Re-export of the search / experiment layer (`pmlp-core`).
pub use pmlp_core as core;
/// Re-export of the dataset substrate (`pmlp-data`).
pub use pmlp_data as data;
/// Re-export of the bespoke hardware model (`pmlp-hw`).
pub use pmlp_hw as hw;
/// Re-export of the minimization techniques (`pmlp-minimize`).
pub use pmlp_minimize as minimize;
/// Re-export of the neural-network substrate (`pmlp-nn`).
pub use pmlp_nn as nn;
/// Re-export of the networked evaluation-cache server (`pmlp-serve`).
pub use pmlp_serve as serve;

/// Commonly used items, importable with `use printed_mlp::prelude::*`.
pub mod prelude {
    pub use pmlp_core::baseline::{BaselineConfig, BaselineDesign};
    pub use pmlp_core::campaign::{
        Campaign, CampaignConfig, CampaignResult, DatasetReport, WorkerOptions,
    };
    pub use pmlp_core::engine::{EvalEngine, Evaluator};
    pub use pmlp_core::experiment::{Effort, Figure1Experiment, Figure2Experiment};
    pub use pmlp_core::objective::{evaluate_config, DesignPoint, EvaluationContext};
    pub use pmlp_core::report::render_campaign_table;
    pub use pmlp_core::{Nsga2, Nsga2Config};
    pub use pmlp_data::{load, UciDataset};
    pub use pmlp_hw::{BespokeMlpCircuit, CellLibrary, CircuitSpec};
    pub use pmlp_minimize::MinimizationConfig;
    pub use pmlp_nn::{Activation, Dataset, Mlp, MlpBuilder, TrainConfig, Trainer};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        // Compile-time check that the re-exports resolve.
        let _config = MinimizationConfig::default();
        let _lib = CellLibrary::egt();
        let _train = TrainConfig::default();
        let _dataset = UciDataset::Seeds;
    }
}
